"""Cost-based strategy selection for Visible predicates.

The paper leaves a cost-based optimizer to future work but its
experiments chart the decision surface precisely: Pre-Filter wins at
high selectivity and loses its SJoin page-skipping edge beyond
sV ~= 0.1 (Figures 9/15); a Bloom Post-Filter stops paying off around
sV ~= 0.5, where postponing the selection to projection time
(NoFilter) wins (Figure 10); Cross-filtering helps "whatever the
selectivity" when a hidden selection exists on the same table or a
descendant (Figure 8).

Instead of hard-coding those crossover points, :class:`Planner`
derives them: it enumerates every candidate strategy assignment,
prices each with the :class:`~repro.core.costmodel.CostModel` against
the statistics catalog (channel bytes, flash page reads, secure-RAM
peak), and picks the cheapest.  Selectivities come from the token's
own sketches, so planning costs *zero* channel round trips -- the
count-probe protocol of earlier versions is gone.  Explicit
``vis_strategy``/``cross`` overrides still force one choice for all
tables, reproducing the paper's fixed-strategy experiments.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.catalog import SecureCatalog
from repro.core.costmodel import (
    Assignment,
    CandidateCost,
    Choice,
    CostModel,
    CostReport,
)
from repro.core.plan import (
    OrderPlan,
    ProjectionMode,
    QueryPlan,
    SortMethod,
    VisPlan,
    VisStrategy,
)
from repro.errors import PlanError
from repro.index.climbing import ClimbingIndex
from repro.sql.binder import BoundQuery
from repro.untrusted.server import VisServer

#: full-enumeration ceiling; beyond it the planner decides tables
#: greedily one at a time (assignments grow as 8^tables)
MAX_ASSIGNMENTS = 256

StrategyLike = Union[str, VisStrategy, None]
SortMethodLike = Union[str, SortMethod, None]


def scatter_order(order: Optional[OrderPlan]) -> Optional[OrderPlan]:
    """Rewrite a global :class:`OrderPlan` for one shard of a scatter.

    A shard cannot apply the query's OFFSET/LIMIT window: the rows it
    drops might be globally ranked above another shard's.  It *can*
    safely pre-sort and keep its own top ``offset + limit`` rows --
    any global window row from this shard must rank within the
    shard's local top ``offset + limit`` (the global order is total,
    so a shard's contribution to the window is a prefix of its local
    order).  The gather side heap-merges the pre-sorted streams and
    applies the window once, globally.
    """
    if order is None:
        return None
    stop = None if order.limit is None else order.offset + order.limit
    return dataclasses.replace(order, offset=0, limit=stop)


def _coerce_strategy(value: StrategyLike) -> Optional[VisStrategy]:
    if value is None or isinstance(value, VisStrategy):
        return value
    try:
        return VisStrategy(value)
    except ValueError:
        names = [s.value for s in VisStrategy]
        raise PlanError(
            f"unknown strategy {value!r}; expected one of {names}"
        ) from None


def _coerce_mode(value: Union[str, ProjectionMode]) -> ProjectionMode:
    if isinstance(value, ProjectionMode):
        return value
    try:
        return ProjectionMode(value)
    except ValueError:
        names = [m.value for m in ProjectionMode]
        raise PlanError(
            f"unknown projection mode {value!r}; expected one of {names}"
        ) from None


def _coerce_sort_method(value: SortMethodLike) -> Optional[SortMethod]:
    if value is None or isinstance(value, SortMethod):
        return value
    try:
        return SortMethod(value)
    except ValueError:
        names = [m.value for m in SortMethod]
        raise PlanError(
            f"unknown order method {value!r}; expected one of {names}"
        ) from None


class Planner:
    """Builds :class:`QueryPlan` objects for bound queries."""

    def __init__(self, catalog: SecureCatalog, vis_server: VisServer):
        self.catalog = catalog
        self.vis = vis_server
        self.cost_model = CostModel(catalog, catalog.token)
        self.plans_built = 0

    # ------------------------------------------------------------------
    def _cross_available(self, bound: BoundQuery, table: str) -> bool:
        """Cross filtering needs a hidden selection on ``table`` or on a
        descendant (their climbing indexes can deliver ``table`` IDs)."""
        schema = self.catalog.schema
        return any(
            schema.is_ancestor(table, sel.table)
            for sel in bound.hidden_selections()
        )

    def _vis_tables(self, bound: BoundQuery) -> List[str]:
        tables: List[str] = []
        for sel in bound.visible_selections():
            if sel.table not in tables:
                tables.append(sel.table)
        return tables

    # ------------------------------------------------------------------
    # candidate enumeration
    # ------------------------------------------------------------------
    def _choice_space(self, bound: BoundQuery, table: str,
                      cross: Optional[bool]) -> List[Choice]:
        if cross is None:
            cross_options: Tuple[bool, ...] = (True, False)
        elif cross:
            cross_options = (True,)
        else:
            cross_options = (False,)
        if not self._cross_available(bound, table):
            cross_options = (False,)
        return [Choice(strategy, use_cross)
                for use_cross in cross_options
                for strategy in VisStrategy]

    def _optimize(self, bound: BoundQuery, tables: Sequence[str],
                  cross: Optional[bool], mode: ProjectionMode
                  ) -> CostReport:
        """Enumerate and price candidate assignments; cheapest first."""
        spaces = {t: self._choice_space(bound, t, cross) for t in tables}
        n_assignments = 1
        for choices in spaces.values():
            n_assignments *= len(choices)
        if n_assignments <= MAX_ASSIGNMENTS:
            assignments: List[Assignment] = [
                tuple(zip(tables, combo))
                for combo in itertools.product(
                    *(spaces[t] for t in tables))
            ]
        else:
            assignments = self._greedy_assignments(bound, tables, spaces,
                                                   mode)
        candidates = [
            CandidateCost(assignment=a,
                          estimate=self.cost_model.estimate(bound, a, mode))
            for a in assignments
        ]
        best = min(candidates, key=lambda c: (c.estimate.infeasible,
                                              c.estimate.total_us))
        best.chosen = True
        return CostReport(
            candidates=candidates,
            selectivities={
                t: self.cost_model.vis_selectivity(bound, t)
                for t in self._vis_tables(bound)
            },
            hidden_selectivities={
                f"{sel.table}.{sel.column.name}": self.catalog.selectivity(
                    sel.table, sel.column.name, sel.predicate)
                for sel in bound.hidden_selections()
            },
        )

    def _greedy_assignments(self, bound: BoundQuery,
                            tables: Sequence[str],
                            spaces: Dict[str, List[Choice]],
                            mode: ProjectionMode) -> List[Assignment]:
        """Fix tables one at a time (others pinned at Pre-Filter); the
        returned list holds one final assignment per local winner so
        the report stays small on very wide queries."""
        decided: Dict[str, Choice] = {
            t: Choice(VisStrategy.PRE, False) for t in tables
        }
        for table in tables:
            best, best_cost = None, None
            for choice in spaces[table]:
                trial = dict(decided)
                trial[table] = choice
                cost = self.cost_model.estimate(
                    bound, tuple(sorted(trial.items())), mode
                ).total_us
                if best_cost is None or cost < best_cost:
                    best, best_cost = choice, cost
            decided[table] = best
        return [tuple(sorted(decided.items()))]

    # ------------------------------------------------------------------
    # the ordering step
    # ------------------------------------------------------------------
    def _order_index(self, bound: BoundQuery
                     ) -> Tuple[Optional[ClimbingIndex], Optional[str]]:
        """The climbing index whose value order can serve the ORDER BY.

        Usable only when the (single) key column carries an index whose
        levels reach the anchor, *and* no DML has appended entries the
        value-ordered runs do not cover: a non-empty delta log, or fk
        deltas on any level below the anchor, break index order.

        Returns ``(index, None)`` when usable and ``(None, reason)``
        when an existing index is *gated* by unfolded DML -- the reason
        lands in the order report (and so in EXPLAIN) together with the
        ``db.compact(...)`` call that would lift the gate, instead of
        disappearing into a silent fallback to external sort.
        """
        if len(bound.order_by) != 1 or bound.is_aggregate \
                or bound.distinct:
            return None, None
        key = bound.order_by[0].column
        index = self.catalog.attr_indexes.get((key.table, key.column.name))
        if index is None or bound.anchor not in index.levels:
            return None, None
        if index.delta_entries:
            return None, (
                f"(gated: {index.delta_entries} delta-log entries on "
                f"{key.table}.{key.column.name} break value order; "
                f"db.compact({key.table!r}) folds them)"
            )
        anchor_pos = index.levels.index(bound.anchor)
        for level in index.levels[:anchor_pos]:
            edges = self.catalog.fk_deltas.get(level)
            if edges:
                n = sum(len(v) for v in edges.values())
                return None, (
                    f"(gated: {n} fk delta edges on {level} below the "
                    f"anchor; db.compact({level!r}) folds them)"
                )
        return index, None

    def _plan_order(self, bound: BoundQuery,
                    override: Optional[SortMethod]) -> Optional[OrderPlan]:
        """Decide how the query's ORDER BY / LIMIT executes."""
        if not bound.is_ordered:
            if override is not None:
                raise PlanError(
                    f"order method {override.value!r} given but the "
                    f"statement has no ORDER BY / LIMIT"
                )
            return None
        if not bound.order_by or bound.limit == 0:
            # no sort key (or nothing survives the LIMIT): plain slice.
            # A forced method other than truncate would be silently
            # ignored -- reject it like any other unusable override.
            if override is not None and override is not SortMethod.TRUNCATE:
                raise PlanError(
                    f"order method {override.value!r} is not usable "
                    f"for this query (no rows to sort)"
                )
            return OrderPlan(keys=bound.order_by,
                             method=SortMethod.TRUNCATE,
                             limit=bound.limit, offset=bound.offset)
        if bound.is_aggregate:
            positions = tuple(bound.group_by.index(item.column)
                              for item in bound.order_by)
            aid_position = None
        elif bound.distinct:
            # dedup precedes the sort; keys are projected values and
            # the index-order path (the anchor-id consumer) is out
            positions = tuple(bound.projections.index(item.column)
                              for item in bound.order_by)
            aid_position = None
        else:
            positions = tuple(bound.projections.index(item.column)
                              for item in bound.order_by)
            aid_position = next(
                i for i, col in enumerate(bound.projections)
                if col.table == bound.anchor and col.column.is_id
            )
        index, gate_note = self._order_index(bound)
        report = self.cost_model.estimate_order(bound, index,
                                                index_note=gate_note)
        if override is not None:
            chosen = next((c for c in report.candidates
                           if c.method is override), None)
            if chosen is None or chosen.infeasible:
                note = chosen.note if chosen else "(not a candidate)"
                raise PlanError(
                    f"order method {override.value!r} is not usable for "
                    f"this query {note}"
                )
        else:
            chosen = min(report.candidates,
                         key=lambda c: (c.infeasible, c.total_us,
                                        c.ram_peak))
            if chosen.infeasible:
                # fail at plan time with a clear message instead of
                # letting the executor die on RamExhausted mid-sort
                reasons = "; ".join(
                    f"{c.method.value} {c.note}".strip()
                    for c in report.candidates
                )
                raise PlanError(
                    f"no ordering method fits this token's secure RAM: "
                    f"{reasons}"
                )
        chosen.chosen = True
        key = bound.order_by[0].column
        return OrderPlan(
            keys=bound.order_by, method=chosen.method,
            limit=bound.limit, offset=bound.offset,
            key_positions=positions, aid_position=aid_position,
            index_table=(key.table if chosen.method is
                         SortMethod.INDEX_ORDER else None),
            index_column=(key.column.name if chosen.method is
                          SortMethod.INDEX_ORDER else None),
            report=report,
        )

    # ------------------------------------------------------------------
    def plan(self, bound: BoundQuery,
             vis_strategy: StrategyLike = None,
             cross: Optional[bool] = None,
             projection: Union[str, ProjectionMode] = ProjectionMode.PROJECT,
             order_method: SortMethodLike = None,
             ) -> QueryPlan:
        """Decide strategies for every table carrying visible selections.

        ``vis_strategy``/``cross`` force one choice for all tables (the
        paper's experiments do this); ``None`` means cost-based: every
        candidate assignment is priced by the cost model and the
        cheapest wins.  The losing candidates ride along on the plan's
        :attr:`~repro.core.plan.QueryPlan.cost_report` for ``EXPLAIN``.
        ``order_method`` similarly forces how an ORDER BY / LIMIT
        executes (external-sort / top-k-heap / index-order); ``None``
        lets the cost model pick.
        """
        override = _coerce_strategy(vis_strategy)
        mode = _coerce_mode(projection)
        vis_plans: Dict[str, VisPlan] = {}
        tables_with_vis = self._vis_tables(bound)
        free_tables = [t for t in tables_with_vis if t != bound.anchor]

        report: Optional[CostReport] = None
        chosen: Dict[str, Choice] = {}
        if override is None and free_tables:
            report = self._optimize(bound, free_tables, cross, mode)
            chosen = dict(report.chosen.assignment)

        for table in tables_with_vis:
            cross_ok = self._cross_available(bound, table)
            if table == bound.anchor:
                # anchor Vis IDs are anchor IDs already: plain merge
                # input.  Cost-based plans skip the redundant anchor
                # Cross pass (Merge intersects the same sublists anyway);
                # explicit ``cross=True`` keeps it for the paper's
                # fixed-strategy experiments.
                if override is not None:
                    use_cross = (cross_ok if cross is None
                                 else (cross and cross_ok))
                else:
                    use_cross = bool(cross) and cross_ok
                vis_plans[table] = VisPlan(table, VisStrategy.PRE,
                                           use_cross)
                continue
            if override is not None:
                use_cross = (cross_ok if cross is None
                             else (cross and cross_ok))
                vis_plans[table] = VisPlan(table, override, use_cross)
                continue
            choice = chosen[table]
            vis_plans[table] = VisPlan(table, choice.strategy,
                                       choice.cross)
        self.plans_built += 1
        return QueryPlan(
            bound=bound, vis_plans=vis_plans, projection_mode=mode,
            order=self._plan_order(bound, _coerce_sort_method(order_method)),
            cost_report=report,
        )
