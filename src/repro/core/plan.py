"""Plan representation: per-predicate strategies and QEP structures.

The planner assigns every *Visible* selection one of the paper's
strategies (section 3.3 / figure 6):

* ``PRE``  -- Pre-Filter: climb the Vis IDs through the ``Ti.id``
  climbing index and merge them with the hidden groups at the anchor.
* ``POST`` -- Post-Filter: build a Bloom filter over the Vis IDs and
  probe the SJoin output.
* ``POST_SELECT`` -- exact post-selection: keep the Vis ID list and
  filter the SJoin output in (possibly many) exact passes.
* ``NOFILTER`` -- postpone the selection entirely to projection time.

Each strategy can additionally be *Cross-filtered*: the Vis IDs are
first intersected with the hidden selections' sublists at the Vis
table's own level, shrinking whatever the strategy consumes.

Hidden selections always go through climbing-index lookups.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional, Set, Tuple

from repro.sql.binder import BoundOrderItem, BoundQuery
from repro.storage.runs import U32View

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.costmodel import CostReport, OrderReport


class VisStrategy(enum.Enum):
    """The paper's four strategies for one visible selection."""

    PRE = "pre"
    POST = "post"
    POST_SELECT = "post-select"
    NOFILTER = "nofilter"


@dataclass
class VisPlan:
    """How one table's visible selection is folded into the QEPSJ."""

    table: str
    strategy: VisStrategy
    cross: bool = False

    def describe(self) -> str:
        """The strategy's display name, e.g. ``Cross-Pre-Filter``."""
        prefix = "Cross-" if self.cross else ""
        names = {
            VisStrategy.PRE: "Pre-Filter",
            VisStrategy.POST: "Post-Filter",
            VisStrategy.POST_SELECT: "Post-Select",
            VisStrategy.NOFILTER: "NoFilter",
        }
        return prefix + names[self.strategy]


class ProjectionMode(enum.Enum):
    """Projection algorithm variants (paper Figures 12/13)."""

    PROJECT = "project"          # the paper's Project algorithm (Fig. 5)
    PROJECT_NOBF = "project-nobf"  # Project without Bloom pre-filtering
    BRUTE_FORCE = "brute-force"  # random accesses per QEPSJ result row


class SortMethod(enum.Enum):
    """How an ``ORDER BY`` / ``LIMIT`` clause is executed on the token.

    * ``EXTERNAL`` -- RAM-bounded external merge sort: value-ordered
      record runs spilled to flash, merged under the paper's
      one-buffer-per-open-run accounting.
    * ``TOP_K``   -- a bounded heap of the best ``offset+limit`` records
      held entirely in (accounted) secure RAM; chosen when the LIMIT is
      small enough to fit.
    * ``INDEX_ORDER`` -- sort avoidance: the ORDER BY key's climbing
      index is scanned in value order and result rows are emitted as
      their ids appear; no sort at all, and LIMIT stops the scan early.
    * ``TRUNCATE`` -- plain ``LIMIT``/``OFFSET`` with no ORDER BY: the
      result (already in anchor-id order) is sliced.
    """

    EXTERNAL = "external-sort"
    TOP_K = "top-k-heap"
    INDEX_ORDER = "index-order"
    TRUNCATE = "truncate"


@dataclass
class OrderPlan:
    """The decided ordering step of one query plan.

    ``key_positions`` locate the ORDER BY values inside the (possibly
    internally extended) projected row; ``aid_position`` locates the
    anchor id that :class:`~repro.core.sort.IndexOrderScan` maps result
    rows by.  For ``INDEX_ORDER``, ``index_table``/``index_column``
    name the climbing index whose value order is reused.
    """

    keys: Tuple[BoundOrderItem, ...]
    method: SortMethod
    limit: Optional[int] = None
    offset: int = 0
    key_positions: Tuple[int, ...] = ()
    aid_position: Optional[int] = None
    index_table: Optional[str] = None
    index_column: Optional[str] = None
    #: per-method estimates when the planner chose cost-based
    report: Optional["OrderReport"] = None

    def describe(self) -> str:
        """One ``EXPLAIN`` line: keys, bounds and the chosen method."""
        parts = []
        if self.keys:
            parts.append("by " + ", ".join(k.describe() for k in self.keys))
        if self.limit is not None:
            parts.append(f"limit {self.limit}")
        if self.offset:
            parts.append(f"offset {self.offset}")
        line = f"order: {' '.join(parts)} -> {self.method.value}"
        if self.method is SortMethod.INDEX_ORDER:
            line += f" ({self.index_table}.{self.index_column})"
        return line


@dataclass
class QueryPlan:
    """A fully decided execution plan for one bound query."""

    bound: BoundQuery
    vis_plans: Dict[str, VisPlan] = field(default_factory=dict)
    projection_mode: ProjectionMode = ProjectionMode.PROJECT
    #: how ORDER BY / LIMIT are applied (None when the query has none)
    order: Optional[OrderPlan] = None
    #: candidate costs when the planner chose cost-based (None when a
    #: strategy override forced the decision)
    cost_report: Optional["CostReport"] = None

    def with_bound(self, bound: BoundQuery) -> "QueryPlan":
        """The same strategy decisions applied to another bound query.

        Prepared statements plan once from a template and re-execute
        with fresh parameter values: the per-table strategies and the
        projection mode are reused, only the bound query (carrying the
        concrete predicate values) is swapped.
        """
        if bound is self.bound:
            return self
        return dataclasses.replace(self, bound=bound)

    def describe(self) -> str:
        """Human-readable plan summary (the ``explain`` output)."""
        lines = [f"anchor: {self.bound.anchor}"]
        for sel in self.bound.hidden_selections():
            lines.append(
                f"hidden {sel.table}.{sel.column.name}: climbing index"
            )
        for table, vp in self.vis_plans.items():
            lines.append(f"visible {table}: {vp.describe()}")
        lines.append(f"projection: {self.projection_mode.value}")
        if self.order is not None:
            lines.append(self.order.describe())
        if self.cost_report is not None and self.cost_report.candidates:
            lines.append(self.cost_report.describe())
        if self.order is not None and self.order.report is not None:
            lines.append(self.order.report.describe())
        return "\n".join(lines)


@dataclass
class QepSjResult:
    """Output of the selection-join phase (QEPSJ).

    ``anchor_ids`` is the sorted list/view of anchor-table IDs.  When an
    SJoin was performed, ``columns`` holds one U32 column per reached
    table (including the anchor, at result position order) of identical
    cardinality ``count``.  ``approx_tables`` are tables whose
    membership was Bloom-filtered (false positives possible) or not
    filtered at all -- projection must eliminate them exactly.
    """

    anchor: str
    count: int
    anchor_ids: Optional[U32View] = None
    columns: Optional[Dict[str, U32View]] = None
    approx_tables: Set[str] = field(default_factory=set)

    def free(self) -> None:
        """Release temporary flash files held by the result."""
        files = set()
        if self.anchor_ids is not None:
            files.add(self.anchor_ids.file)
        if self.columns:
            for view in self.columns.values():
                files.add(view.file)
        for f in files:
            f.free()
