"""GhostDB public facade.

Typical use::

    from repro import GhostDB

    db = GhostDB()
    db.execute_ddl("CREATE TABLE Doctors (id int, specialty char(20), "
                   "name char(20) HIDDEN)")
    db.execute_ddl("CREATE TABLE Patients (id int, "
                   "did int HIDDEN REFERENCES Doctors, age int, "
                   "bodymassindex float HIDDEN)")
    db.load("Doctors", [("Psychiatrist", "Freud"), ...])
    db.load("Patients", [(0, 51, 27.5), ...])
    db.build()
    result = db.query("SELECT Patients.id FROM Patients, Doctors "
                      "WHERE Patients.did = Doctors.id "
                      "AND Doctors.specialty = 'Psychiatrist' "
                      "AND Patients.bodymassindex > 25")
    print(result.rows, result.stats.total_s)

Everything hidden stays on the simulated secure token; the only bytes
that ever leave it are the query texts (verifiable via
``db.audit_outbound()``).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.aggregate import apply_aggregates, effective_projections
from repro.core.catalog import SecureCatalog
from repro.core.executor import QepSjExecutor, QueryResult, QueryStats
from repro.core.loader import Loader
from repro.core.operators import ExecContext
from repro.core.plan import ProjectionMode, QueryPlan
from repro.core.planner import Planner, StrategyLike
from repro.core.project import ProjectionExecutor
from repro.core.reference import ReferenceEngine
from repro.errors import GhostDBError, SchemaError
from repro.hardware.token import SecureToken, TokenConfig
from repro.schema.ddl import table_from_sql
from repro.schema.model import Schema, Table
from repro.sql.binder import Binder
from repro.untrusted.engine import UntrustedEngine
from repro.untrusted.server import VisServer


class GhostDB:
    """A GhostDB instance: one secure token plus one Untrusted engine."""

    def __init__(self, config: Optional[TokenConfig] = None,
                 indexed_columns: Optional[Dict[str, Sequence[str]]] = None):
        self.token = SecureToken(config)
        self._ddl_tables: List[Table] = []
        self._indexed_columns = indexed_columns
        self.schema: Optional[Schema] = None
        self.untrusted: Optional[UntrustedEngine] = None
        self.catalog: Optional[SecureCatalog] = None
        self._loader: Optional[Loader] = None
        self._binder: Optional[Binder] = None
        self._vis_server: Optional[VisServer] = None
        self._planner: Optional[Planner] = None
        self._reference: Optional[ReferenceEngine] = None

    # ------------------------------------------------------------------
    # schema definition and loading
    # ------------------------------------------------------------------
    def execute_ddl(self, sql: str) -> None:
        """Register one CREATE TABLE statement."""
        if self.schema is not None:
            raise SchemaError("schema already finalized (rows were loaded)")
        self._ddl_tables.append(table_from_sql(sql))

    def _finalize_schema(self) -> None:
        if self.schema is None:
            if not self._ddl_tables:
                raise SchemaError("no tables declared")
            self.schema = Schema(self._ddl_tables)
            self.untrusted = UntrustedEngine(self.schema)
            self._loader = Loader(self.schema, self.token, self.untrusted,
                                  self._indexed_columns)
            self._binder = Binder(self.schema)

    def load(self, table: str, rows: Sequence[Tuple]) -> None:
        """Queue rows for ``table`` (data columns only; ids are dense)."""
        self._finalize_schema()
        if self.catalog is not None:
            raise SchemaError("database already built")
        self._loader.add_rows(table, rows)

    def build(self) -> None:
        """Build hidden images, SKTs and climbing indexes on the token.

        Loading happens over a secure provisioning channel, so the cost
        ledger is reset afterwards: query costs start from zero.
        """
        self._finalize_schema()
        if self.catalog is not None:
            raise SchemaError("database already built")
        self.catalog = self._loader.build()
        self._vis_server = VisServer(self.untrusted, self.token)
        self._planner = Planner(self.catalog, self._vis_server)
        self._reference = ReferenceEngine(self.schema,
                                          self.catalog.raw_rows)
        self.token.reset_costs()

    def _require_built(self) -> None:
        if self.catalog is None:
            raise GhostDBError("call build() before querying")

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def plan_query(self, sql: str,
                   vis_strategy: StrategyLike = None,
                   cross: Optional[bool] = None,
                   projection: Union[str, ProjectionMode] = "project",
                   ) -> QueryPlan:
        """Bind and plan without executing."""
        self._require_built()
        bound = self._binder.bind_sql(sql)
        if bound.is_aggregate:
            bound = dataclasses.replace(
                bound, projections=effective_projections(bound)
            )
        return self._planner.plan(bound, vis_strategy, cross, projection)

    def explain(self, sql: str, **kwargs) -> str:
        """Human-readable plan description."""
        return self.plan_query(sql, **kwargs).describe()

    def query(self, sql: str,
              vis_strategy: StrategyLike = None,
              cross: Optional[bool] = None,
              projection: Union[str, ProjectionMode] = "project",
              ) -> QueryResult:
        """Execute a SELECT linking Visible and Hidden data.

        ``vis_strategy`` forces Pre/Post/Post-Select/NoFilter for every
        visible selection (``None`` = cost-based choice); ``cross``
        toggles Cross-filtering; ``projection`` picks the projection
        algorithm variant.
        """
        plan = self.plan_query(sql, vis_strategy, cross, projection)
        return self.execute_plan(plan)

    def execute_plan(self, plan: QueryPlan) -> QueryResult:
        """Run an already-planned query and collect its cost report."""
        self._require_built()
        before = self.token.ledger.snapshot()
        ram_peak_before = self.token.ram.peak_used
        ch = self.token.channel.stats
        in_before, out_before = ch.bytes_to_secure, ch.bytes_to_untrusted
        # the query text itself is the one thing Secure reveals
        with self.token.label("Vis"):
            self.token.channel.to_untrusted(
                max(1, len(plan.bound.sql)), kind="query",
                description=plan.bound.sql[:80],
            )
        ctx = ExecContext(self.token, self.catalog, self._vis_server,
                          plan.bound)
        sj = QepSjExecutor(ctx).execute(plan)
        try:
            names, rows = ProjectionExecutor(ctx).execute(
                sj, plan.projection_mode
            )
        finally:
            sj.free()
        if plan.bound.is_aggregate:
            names, rows = apply_aggregates(plan.bound,
                                           plan.bound.projections, rows)
        after = self.token.ledger.snapshot()
        stats = self._stats_between(before, after, rows)
        stats.bytes_to_secure = ch.bytes_to_secure - in_before
        stats.bytes_to_untrusted = ch.bytes_to_untrusted - out_before
        stats.ram_peak = max(ram_peak_before, self.token.ram.peak_used)
        return QueryResult(columns=names, rows=rows, stats=stats, plan=plan)

    # ------------------------------------------------------------------
    def _stats_between(self, before, after, rows) -> QueryStats:
        by_op: Dict[str, float] = {}
        for label, parts in after.time_us.items():
            delta = sum(parts.values()) - sum(
                before.time_us.get(label, {}).values()
            )
            if delta > 1e-12:
                by_op[label] = delta / 1e6
        counters = {
            k: after.counters[k] - before.counters.get(k, 0)
            for k in after.counters
            if after.counters[k] != before.counters.get(k, 0)
        }
        return QueryStats(
            total_s=sum(by_op.values()),
            by_operator=by_op,
            counters=counters,
            bytes_to_secure=0,
            bytes_to_untrusted=0,
            ram_peak=0,
            result_rows=len(rows),
        )

    # ------------------------------------------------------------------
    # oracle, audit, reports
    # ------------------------------------------------------------------
    def reference_query(self, sql: str) -> Tuple[List[str], List[Tuple]]:
        """Ground-truth evaluation (test oracle -- ignores the token)."""
        self._require_built()
        bound = self._binder.bind_sql(sql)
        return self._reference.execute(bound)

    def audit_outbound(self):
        """Everything that ever left the Secure token."""
        return self.token.channel.audit_outbound()

    def storage_report(self) -> Dict[str, int]:
        """Flash bytes per stored component family."""
        self._require_built()
        return self.catalog.storage_report()

    def set_throughput(self, mbps: float) -> None:
        """Change the simulated channel throughput (Figure 14)."""
        self.token.set_throughput(mbps)
