"""GhostDB public facade.

Every statement goes through one entry point, ``db.execute()``::

    from repro import GhostDB

    db = GhostDB()
    db.execute("CREATE TABLE Doctors (id int, specialty char(20), "
               "name char(20) HIDDEN)")
    db.execute("CREATE TABLE Patients (id int, "
               "did int HIDDEN REFERENCES Doctors, age int, "
               "bodymassindex float HIDDEN)")
    db.execute("INSERT INTO Doctors VALUES ('Psychiatrist', 'Freud')")
    db.execute("INSERT INTO Patients VALUES (0, 51, 27.5)")
    db.build()
    result = db.execute("SELECT Patients.id FROM Patients, Doctors "
                        "WHERE Patients.did = Doctors.id "
                        "AND Doctors.specialty = 'Psychiatrist' "
                        "AND Patients.bodymassindex > 25")
    print(result.rows, result.stats.total_s)

    # the database stays alive after build(): incremental DML appends
    # to the flash-resident structures, no rebuild required
    db.execute("INSERT INTO Patients VALUES (0, 44, 31.0)")
    db.execute("DELETE FROM Patients WHERE bodymassindex > 30")

``execute()`` lexes, binds and dispatches any supported statement --
``CREATE TABLE``, ``INSERT INTO``, ``DELETE FROM`` and ``SELECT`` --
and takes ``?`` placeholders via ``params``.  SELECTs run through the
default session's plan cache; DML returns a
:class:`~repro.core.dml.DmlResult` whose cost scales with the
appended/affected rows, not the table size.  (The historical
``db.execute_ddl()``/``db.query()`` shims are gone; ``execute()`` is
the one entry point.)

Repeated query templates should go through the prepared-statement
layer, which plans once and substitutes parameters per execution::

    stmt = db.prepare("SELECT Patients.id FROM Patients, Doctors "
                      "WHERE Patients.did = Doctors.id "
                      "AND Doctors.specialty = ? "
                      "AND Patients.bodymassindex > ?")
    result = stmt.execute(("Psychiatrist", 25))
    batch = db.query_many(stmt.sql,
                          [("Psychiatrist", 25), ("Dentist", 30)])
    print(batch.stats.total_s, batch.plans_computed)

Everything hidden stays on the simulated secure token; the only bytes
that ever leave it are statement texts (with INSERTed hidden values
masked), Vis requests, and the visible halves of inserted rows --
verifiable via ``db.audit_outbound()``.
"""

from __future__ import annotations

import dataclasses
import weakref
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.aggregate import apply_aggregates, effective_projections
from repro.core.catalog import SecureCatalog
from repro.core.compaction import (DEFAULT_HEADROOM_FACTOR,
                                   DEFAULT_PAGES_PER_STEP,
                                   CompactionManager, CompactionProgress,
                                   TableCompactionStatus)
from repro.core.dml import DmlExecutor, DmlResult
from repro.core.executor import QepSjExecutor, QueryResult, QueryStats
from repro.core.loader import Loader
from repro.core.operators import ExecContext
from repro.core.plan import ProjectionMode, QueryPlan, VisPlan
from repro.core.planner import Planner, SortMethodLike, StrategyLike
from repro.core.project import ProjectionExecutor
from repro.core.recovery import (IdempotencyLedger, RecoveryReport,
                                 StatementJournal)
from repro.core.reference import ReferenceEngine
from repro.core.session import BatchResult, PreparedStatement, Session
from repro.core.sort import (OrderByExecutor, dedup_rows, sort_projections,
                             strip_internal_columns)
from repro.errors import BindError, GhostDBError, SchemaError
from repro.hardware.token import SecureToken, TokenConfig
from repro.schema.ddl import column_from_def
from repro.schema.model import Schema, Table
from repro.sql import ast
from repro.sql.binder import Binder, BoundDelete, BoundInsert
from repro.sql.parser import parse
from repro.untrusted.engine import UntrustedEngine
from repro.untrusted.server import VisServer


class GhostDB:
    """A GhostDB instance: one secure token plus one Untrusted engine.

    ``GhostDB(shards=N)`` with ``N > 1`` returns a
    :class:`~repro.shard.fleet.ShardedGhostDB` instead: N independent
    tokens behind the same statement API, with SELECTs scattered and
    gathered across them (see :mod:`repro.shard`).
    """

    def __new__(cls, config: Optional[TokenConfig] = None,
                indexed_columns: Optional[Dict[str, Sequence[str]]] = None,
                shards: Optional[int] = None):
        if cls is GhostDB and shards is not None and shards > 1:
            from repro.shard.fleet import ShardedGhostDB
            # not a GhostDB subclass, so __init__ below is skipped
            return ShardedGhostDB(shards, config=config,
                                  indexed_columns=indexed_columns)
        return super().__new__(cls)

    def __init__(self, config: Optional[TokenConfig] = None,
                 indexed_columns: Optional[Dict[str, Sequence[str]]] = None,
                 shards: Optional[int] = None):
        if shards is not None and shards < 1:
            raise ValueError("shards must be >= 1")
        self.token = SecureToken(config)
        self._ddl_tables: List[Table] = []
        self._indexed_columns = indexed_columns
        self.schema: Optional[Schema] = None
        self.untrusted: Optional[UntrustedEngine] = None
        self.catalog: Optional[SecureCatalog] = None
        self._loader: Optional[Loader] = None
        self._binder: Optional[Binder] = None
        self._vis_server: Optional[VisServer] = None
        self._planner: Optional[Planner] = None
        self._reference: Optional[ReferenceEngine] = None
        self._dml: Optional[DmlExecutor] = None
        self._compactor: Optional[CompactionManager] = None
        self._sessions: "weakref.WeakSet[Session]" = weakref.WeakSet()
        self._default_session: Optional[Session] = None
        self._generation = 0
        # exactly-once DML: the service writer lane records responses
        # here under client idempotency keys (persisted in snapshots)
        self.ikeys = IdempotencyLedger()
        # the last statement's undo journal: armed (uncommitted) when a
        # DML crashed mid-flight, committed otherwise -- recover()
        # rolls back the former, the fleet's abort path the latter
        self._journal: Optional[StatementJournal] = None

    # ------------------------------------------------------------------
    # the unified statement entry point
    # ------------------------------------------------------------------
    def execute(self, sql: str, params: Optional[Sequence] = None,
                vis_strategy: StrategyLike = None,
                cross: Optional[bool] = None,
                projection: Union[str, ProjectionMode] = "project",
                order_method: SortMethodLike = None,
                ) -> Union[QueryResult, DmlResult, None]:
        """Execute one SQL statement of any supported kind.

        * ``CREATE TABLE`` registers a table (before any rows exist);
          returns ``None``.
        * ``INSERT INTO`` before :meth:`build` queues rows for the bulk
          load (returns ``None``); after :meth:`build` it appends
          incrementally to every flash-resident structure and returns a
          :class:`DmlResult` whose cost scales with the appended bytes.
        * ``DELETE FROM`` tombstones matching rows (after ``build()``)
          and returns a :class:`DmlResult`.
        * ``SELECT`` runs through the default session's plan cache and
          returns a :class:`QueryResult`; the strategy knobs
          (``vis_strategy``/``cross``/``projection``) apply here.

        ``?`` placeholders anywhere a literal is allowed are filled
        from ``params``.
        """
        parsed = parse(sql)
        if not isinstance(parsed, ast.SelectQuery) and \
                order_method is not None:
            # a forced ordering method on a statement that cannot sort
            # must raise, never be silently dropped
            raise BindError(
                f"order_method {order_method!r} applies to SELECT "
                f"statements only"
            )
        if isinstance(parsed, ast.CreateTable):
            if params:
                raise BindError("DDL statements take no parameters")
            self._register_table(Table(
                parsed.name, [column_from_def(c) for c in parsed.columns]
            ))
            return None
        if isinstance(parsed, ast.SelectQuery):
            self._require_built()
            return self._session_default().query(
                sql, params, vis_strategy, cross, projection,
                order_method=order_method, parsed=parsed,
            )
        self._finalize_schema()
        if isinstance(parsed, ast.InsertStatement):
            bound = self._binder.bind_insert(parsed, sql)
            bound = self._substitute_dml(bound, params)
            if self.catalog is None:
                # before build(): inserts ride the bulk provisioning path
                self._loader.add_rows(bound.table, bound.rows)
                return None
            return self._run_dml(bound)
        if isinstance(parsed, ast.DeleteStatement):
            self._require_built()
            bound = self._binder.bind_delete(parsed, sql)
            return self._run_dml(self._substitute_dml(bound, params))
        raise BindError(
            f"unsupported statement {type(parsed).__name__}"
        )  # pragma: no cover - parser is exhaustive

    @staticmethod
    def _substitute_dml(bound: Union[BoundInsert, BoundDelete],
                        params: Optional[Sequence]
                        ) -> Union[BoundInsert, BoundDelete]:
        if params is None:
            if bound.has_parameters:
                raise BindError(
                    f"statement has {bound.param_count} unbound ? "
                    f"placeholder(s): pass params"
                )
            return bound
        return bound.substitute(tuple(params))

    def _run_dml(self, bound: Union[BoundInsert, BoundDelete]
                 ) -> DmlResult:
        """Apply one DML statement inside a per-statement cost window.

        A :class:`StatementJournal` is armed around the mutation: if
        the statement dies mid-flight (power loss, out of space) the
        journal stays uncommitted and :meth:`recover` rolls the token
        back to its pre-statement state; on success the committed
        journal is kept until the next statement so a fleet-level abort
        can still undo this shard (:meth:`undo_last_dml`).
        """
        before = self.token.ledger.snapshot()
        ch = self.token.channel.stats
        in_before, out_before = ch.bytes_to_secure, ch.bytes_to_untrusted
        journal = StatementJournal(self, bound.table)
        try:
            with self.token.ram.query_window() as window:
                if isinstance(bound, BoundInsert):
                    statement = "insert"
                    affected = self._dml.insert(bound)
                else:
                    statement = "delete"
                    affected = self._dml.delete(bound)
        except BaseException:
            journal.detach()
            self._journal = journal  # uncommitted: recover() rolls back
            raise
        journal.detach()
        journal.committed = True
        self._journal = journal
        stats = self._stats_between(before, self.token.ledger.snapshot(),
                                    rows=())
        stats.bytes_to_secure = ch.bytes_to_secure - in_before
        stats.bytes_to_untrusted = ch.bytes_to_untrusted - out_before
        stats.ram_peak = window.peak
        stats.result_rows = affected
        return DmlResult(statement=statement, table=bound.table,
                         rows_affected=affected, stats=stats)

    # ------------------------------------------------------------------
    # schema definition and loading
    # ------------------------------------------------------------------
    def _register_table(self, table: Table) -> None:
        if self.schema is not None:
            raise SchemaError("schema already finalized (rows were loaded)")
        self._ddl_tables.append(table)

    def _finalize_schema(self) -> None:
        if self.schema is None:
            if not self._ddl_tables:
                raise SchemaError("no tables declared")
            self.schema = Schema(self._ddl_tables)
            self.untrusted = UntrustedEngine(self.schema)
            self._loader = Loader(self.schema, self.token, self.untrusted,
                                  self._indexed_columns)
            self._binder = Binder(self.schema)

    def load(self, table: str, rows: Sequence[Tuple]) -> None:
        """Queue rows for ``table`` (data columns only; ids are dense)."""
        self._finalize_schema()
        if self.catalog is not None:
            raise SchemaError("database already built")
        self._loader.add_rows(table, rows)

    def build(self) -> None:
        """Build hidden images, SKTs and climbing indexes on the token.

        Loading happens over a secure provisioning channel, so the cost
        ledger is reset afterwards: query costs start from zero.
        """
        self._finalize_schema()
        if self.catalog is not None:
            raise SchemaError("database already built")
        self.catalog = self._loader.build()
        self._wire_engines()
        self.token.reset_costs()

    def _wire_engines(self) -> None:
        """(Re)create the engines that live on top of one catalog."""
        self._vis_server = VisServer(self.untrusted, self.token)
        self._planner = Planner(self.catalog, self._vis_server)
        self._reference = ReferenceEngine(self.schema,
                                          self.catalog.raw_rows,
                                          self.catalog.tombstones)
        self._dml = DmlExecutor(self.schema, self.token, self.catalog,
                                self._vis_server, self._planner)
        # fresh manager per catalog: any half-done compaction of a
        # previous catalog died with that catalog's token image
        self._compactor = CompactionManager(self)

    def _require_built(self) -> None:
        if self.catalog is None:
            raise GhostDBError("call build() before querying")

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def _bind(self, sql: str, parsed: Optional[ast.SelectQuery] = None):
        """Bind ``sql`` (or its already-parsed AST), normalizing
        aggregate projections and appending the ordering step's
        internal sort columns."""
        bound = (self._binder.bind(parsed, sql) if parsed is not None
                 else self._binder.bind_sql(sql))
        if bound.is_aggregate:
            bound = dataclasses.replace(
                bound, projections=effective_projections(bound)
            )
        return sort_projections(bound, self.schema)

    def plan_query(self, sql: str,
                   vis_strategy: StrategyLike = None,
                   cross: Optional[bool] = None,
                   projection: Union[str, ProjectionMode] = "project",
                   order_method: SortMethodLike = None,
                   ) -> QueryPlan:
        """Bind and plan without executing."""
        self._require_built()
        bound = self._bind(sql)
        if bound.has_parameters:
            raise BindError(
                f"statement has {bound.param_count} unbound ? "
                f"placeholder(s): use prepare() and execute(params)"
            )
        return self._planner.plan(bound, vis_strategy, cross, projection,
                                  order_method)

    def explain(self, sql: str, analyze: bool = False, **kwargs) -> str:
        """Human-readable plan description.

        Cost-based plans (no ``vis_strategy`` override) include every
        candidate assignment with its estimated simulated time, channel
        bytes and secure-RAM peak.  ``analyze=True`` additionally
        *executes* each candidate and reports the measured simulated
        time next to the estimate -- the estimated-vs-measured view of
        the optimizer's decision surface.  (Analyze runs really charge
        the token's ledger; use it as a tuning tool, not on a hot
        path.)
        """
        plan = self.plan_query(sql, **kwargs)
        if analyze and plan.cost_report is not None:
            for cand in plan.cost_report.candidates:
                if cand.estimate.infeasible:
                    continue   # the executor would exhaust secure RAM
                trial = dataclasses.replace(
                    plan,
                    vis_plans={
                        **plan.vis_plans,
                        **{t: VisPlan(t, c.strategy, c.cross)
                           for t, c in cand.assignment},
                    },
                    cost_report=None,
                )
                cand.measured_s = self.execute_plan(trial).stats.total_s
        text = plan.describe()
        if analyze:
            # the maintenance counters a DBA would want next to the
            # measured numbers: what compaction debt the touched tables
            # carry and what the advisor would say about folding it
            status = self._compactor.status()
            lines = ["", "compaction status:"]
            lines += [f"  {status[t].describe()}"
                      for t in sorted(plan.bound.tables)]
            text += "\n".join(lines)
        return text

    def execute_plan(self, plan: QueryPlan, *, announce: bool = True,
                     vis_seed: Optional[Dict] = None) -> QueryResult:
        """Run an already-planned query and collect its cost report.

        ``announce=False`` skips the per-query transmission of the
        query text (the batched path announces a whole batch in one
        message); ``vis_seed`` pre-populates the execution context's
        Vis cache with ``{(table, columns): VisResult}`` entries that a
        batched prefetch already downloaded.
        """
        self._require_built()
        before = self.token.ledger.snapshot()
        ch = self.token.channel.stats
        in_before, out_before = ch.bytes_to_secure, ch.bytes_to_untrusted
        with self.token.ram.query_window() as window:
            if announce:
                # the query text itself is the one thing Secure reveals
                with self.token.label("Vis"):
                    self.token.channel.to_untrusted(
                        max(1, len(plan.bound.sql)), kind="query",
                        description=plan.bound.sql[:80],
                    )
            ctx = ExecContext(self.token, self.catalog, self._vis_server,
                              plan.bound)
            if vis_seed:
                for (table, columns), result in vis_seed.items():
                    ctx.seed_vis(table, result, columns)
            sj = QepSjExecutor(ctx).execute(plan)
            try:
                names, rows = ProjectionExecutor(ctx).execute(
                    sj, plan.projection_mode
                )
            finally:
                sj.free()
            if plan.bound.is_aggregate:
                names, rows = apply_aggregates(plan.bound,
                                               plan.bound.projections, rows)
            elif plan.bound.distinct:
                rows = dedup_rows(rows)
            if plan.order is not None:
                rows = OrderByExecutor(ctx, plan.order).execute(rows)
        names, rows = strip_internal_columns(plan.bound, names, rows)
        after = self.token.ledger.snapshot()
        stats = self._stats_between(before, after, rows)
        stats.bytes_to_secure = ch.bytes_to_secure - in_before
        stats.bytes_to_untrusted = ch.bytes_to_untrusted - out_before
        # the per-query attribution window ensures this is the peak of
        # *this* query's allocations, even when other statements
        # interleave on the shared token (service admission control)
        stats.ram_peak = window.peak
        return QueryResult(columns=names, rows=rows, stats=stats, plan=plan)

    def execute_fragment(self, plan: QueryPlan, *, announce: bool = True,
                         vis_seed: Optional[Dict] = None) -> QueryResult:
        """Run one *shard fragment* of a scattered query.

        Like :meth:`execute_plan` but without the global finishing
        stages -- no aggregation, no DISTINCT dedup, no internal-column
        stripping: those are whole-result operations the gather side
        applies once, over the merged stream.  The fragment's ordering
        step *does* run when the plan carries one (a scatter-rewritten
        :class:`~repro.core.plan.OrderPlan`: per-shard pre-sort /
        top-(offset+limit), charged to this token's RAM and flash like
        any sort).  Rows keep the full projection list -- including the
        anchor-id tail the gather merges by -- and the cost window is
        accounted identically to a standalone query.
        """
        self._require_built()
        before = self.token.ledger.snapshot()
        ch = self.token.channel.stats
        in_before, out_before = ch.bytes_to_secure, ch.bytes_to_untrusted
        with self.token.ram.query_window() as window:
            if announce:
                # each shard's channel carries its own audited copy of
                # the (public) query text: the no-leak invariant stays
                # checkable per channel
                with self.token.label("Vis"):
                    self.token.channel.to_untrusted(
                        max(1, len(plan.bound.sql)), kind="query",
                        description=plan.bound.sql[:80],
                    )
            ctx = ExecContext(self.token, self.catalog, self._vis_server,
                              plan.bound)
            if vis_seed:
                for (table, columns), result in vis_seed.items():
                    ctx.seed_vis(table, result, columns)
            sj = QepSjExecutor(ctx).execute(plan)
            try:
                names, rows = ProjectionExecutor(ctx).execute(
                    sj, plan.projection_mode
                )
            finally:
                sj.free()
            if plan.order is not None:
                rows = OrderByExecutor(ctx, plan.order).execute(rows)
        after = self.token.ledger.snapshot()
        stats = self._stats_between(before, after, rows)
        stats.bytes_to_secure = ch.bytes_to_secure - in_before
        stats.bytes_to_untrusted = ch.bytes_to_untrusted - out_before
        stats.ram_peak = window.peak
        return QueryResult(columns=names, rows=rows, stats=stats, plan=plan)

    # ------------------------------------------------------------------
    def _stats_between(self, before, after, rows) -> QueryStats:
        by_op: Dict[str, float] = {}
        for label, parts in after.time_us.items():
            delta = sum(parts.values()) - sum(
                before.time_us.get(label, {}).values()
            )
            if delta > 1e-12:
                by_op[label] = delta / 1e6
        counters = {
            k: after.counters[k] - before.counters.get(k, 0)
            for k in after.counters
            if after.counters[k] != before.counters.get(k, 0)
        }
        return QueryStats(
            total_s=sum(by_op.values()),
            by_operator=by_op,
            counters=counters,
            bytes_to_secure=0,
            bytes_to_untrusted=0,
            ram_peak=0,
            result_rows=len(rows),
        )

    # ------------------------------------------------------------------
    # sessions, prepared statements, batched execution
    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        """Bumped by :meth:`rebuild`; plans are valid per generation."""
        return self._generation

    @property
    def table_generations(self) -> Dict[str, Tuple[int, int]]:
        """Per-table ``(data, stats)`` generations.

        The data generation bumps on INSERT/DELETE, the stats
        generation whenever the table's sketches change (DML or
        :meth:`analyze`).  Session plan caches compare cached entries
        against this map, so DML -- and statistics refreshes, which can
        flip a cost-based strategy choice -- invalidate only plans
        touching the mutated table.
        """
        if self.catalog is None:
            return {}
        return {
            t: (self.catalog.data_generations[t],
                self.catalog.stats_generations[t])
            for t in self.schema.tables
        }

    def session(self, plan_cache_capacity: int = 64) -> Session:
        """A new session (own plan cache) over this database."""
        return Session(self, plan_cache_capacity)

    def _session_default(self) -> Session:
        if self._default_session is None:
            self._default_session = Session(self)
        return self._default_session

    def prepare(self, sql: str,
                vis_strategy: StrategyLike = None,
                cross: Optional[bool] = None,
                projection: Union[str, ProjectionMode] = "project",
                order_method: SortMethodLike = None,
                ) -> PreparedStatement:
        """Bind ``sql`` once for repeated execution.

        ``?`` placeholders in predicates are substituted per call of
        :meth:`PreparedStatement.execute`; the plan is computed on the
        first execution and reused (one planner invocation per
        template, not per query).  Uses the default session's plan
        cache -- create a dedicated :meth:`session` for isolation.
        """
        self._require_built()
        return self._session_default().prepare(sql, vis_strategy, cross,
                                               projection, order_method)

    def query_many(self,
                   sql: Union[str, Sequence[str]],
                   param_sets: Optional[Sequence[Sequence]] = None,
                   **kwargs) -> BatchResult:
        """Batched execution through the default session.

        ``query_many(template, param_sets)`` executes one parameterized
        template per parameter set; ``query_many([sql, ...])`` runs
        heterogeneous statements.  Planner probes, query announcements
        and Vis downloads are amortized across the batch; the returned
        :class:`BatchResult` carries per-query results plus one
        aggregated :class:`QueryStats`.
        """
        self._require_built()
        return self._session_default().query_many(sql, param_sets,
                                                  **kwargs)

    def compact(self, table: str, max_steps: Optional[int] = None,
                pages_per_step: int = DEFAULT_PAGES_PER_STEP,
                headroom_factor: float = DEFAULT_HEADROOM_FACTOR
                ) -> CompactionProgress:
        """Incrementally compact one table, in bounded steps.

        Folds the table's accumulated DML debt -- tombstones, climbing-
        index delta logs, subtree fk deltas -- back into densely built
        structures *without* stopping the world: each step copies at
        most ``pages_per_step`` flash pages (or folds one climbing
        index), all writes go to shadow files, and queries issued
        between steps read the untouched old image.  Call with
        ``max_steps`` to bound a maintenance slice and call again later
        to continue; ``max_steps=None`` runs to completion.  The
        returned :class:`~repro.core.compaction.CompactionProgress`
        reports steps, pages rewritten, the worst per-step pause and
        the advisor verdict.

        Before writing anything the compaction advisor prices the
        shadow footprint against FTL headroom and raises
        :class:`~repro.errors.CompactionDeclined` when space is short
        (``headroom_factor`` is the safety margin) -- never an
        out-of-space error mid-fold.  DML interleaved between steps
        aborts and restarts the job; the restart is counted, not an
        error.

        Only the compacted table's data generation bumps (and only when
        its own DML was folded), so cached plans of other tables keep
        serving.  Once a table's delta logs are folded the planner's
        index-order ``ORDER BY`` path opens up again for it.
        """
        self._require_built()
        return self._compactor.compact(table, max_steps, pages_per_step,
                                       headroom_factor)

    def compaction_status(self) -> Dict[str, TableCompactionStatus]:
        """Per-table compaction debt: tombstone and delta-log volume,
        fk-delta edges, the advisor's verdict, and any in-flight job's
        phase.  The same block is appended to ``EXPLAIN ANALYZE``
        output for the tables a query touches."""
        self._require_built()
        return self._compactor.status()

    def rebuild(self,
                indexed_columns: Optional[Dict[str, Sequence[str]]] = None
                ) -> None:
        """Fold all accumulated DML debt back into built structures.

        Historically this re-provisioned the entire token from the
        retained raw rows -- a stop-the-world rebuild.  It now survives
        as a thin shim: without arguments it simply loops
        :meth:`compact` over every dirty table (per-table, bounded
        steps internally, same end state), resets the cost ledger as
        the old rebuild did, and bumps :attr:`generation`.

        Passing ``indexed_columns`` still takes the full
        re-provisioning path, since changing which attributes are
        indexed genuinely requires rebuilding from scratch; that path
        flushes every session's plan cache when the selection changed.

        Either way cache invalidation is routed through the per-table
        generations: only tables whose own DML was folded bump, so
        plans over untouched tables keep serving from every session's
        cache.
        """
        self._require_built()
        if indexed_columns is not None:
            self._full_reprovision(indexed_columns)
            return
        # one pass in any order converges: compact(T) folds T's whole
        # subtree, and it never re-dirties tables (the +1 pass is a
        # safety net, not an expectation)
        for _ in range(len(self.schema.tables) + 1):
            dirty = self._compactor.dirty_tables()
            if not dirty:
                break
            for table in dirty:
                self._compactor.compact(table)
        self.token.reset_costs()
        self._generation += 1

    def _full_reprovision(
            self, indexed_columns: Dict[str, Sequence[str]]) -> None:
        """Rebuild the token image from scratch (index-set changes)."""
        raw_rows = self._compacted_rows()
        old = self.catalog
        dirty = {
            t for t in self.schema.tables
            if old.data_generations[t] != old.built_generations[t]
            or old.stats_generations[t] != 0
        }
        reindexed = indexed_columns != self._indexed_columns
        self._indexed_columns = indexed_columns
        self.token = SecureToken(self.token.config)
        self.untrusted = UntrustedEngine(self.schema)
        self._loader = Loader(self.schema, self.token, self.untrusted,
                              self._indexed_columns)
        for table, rows in raw_rows.items():
            self._loader.add_rows(table, rows)
        self.catalog = self._loader.build()
        # carry the generation counters across the rebuild, bumping the
        # mutated tables so their cached plans stale-drop selectively
        for t in self.schema.tables:
            gen = old.data_generations[t] + (1 if t in dirty else 0)
            self.catalog.data_generations[t] = gen
            self.catalog.built_generations[t] = gen
        self._wire_engines()
        self.token.reset_costs()
        self._generation += 1
        if reindexed:
            for session in list(self._sessions):
                session.invalidate()

    def _compacted_rows(self) -> Dict[str, List[Tuple]]:
        """Live raw rows with dense new ids and remapped foreign keys.

        Deletes RESTRICT, so every live foreign key points at a live
        child row and the remap is total.
        """
        tombstones = self.catalog.tombstones
        id_maps: Dict[str, Dict[int, int]] = {}
        for name, rows in self.catalog.raw_rows.items():
            dead = tombstones[name]
            id_maps[name] = {}
            for rid in range(len(rows)):
                if rid not in dead:
                    id_maps[name][rid] = len(id_maps[name])
        out: Dict[str, List[Tuple]] = {}
        for name, rows in self.catalog.raw_rows.items():
            table = self.schema.table(name)
            fk_positions = [
                (table.column_position(c.name), id_maps[c.references])
                for c in table.foreign_keys
            ]
            dead = tombstones[name]
            kept: List[Tuple] = []
            for rid, row in enumerate(rows):
                if rid in dead:
                    continue
                if fk_positions:
                    cells = list(row)
                    for pos, mapping in fk_positions:
                        cells[pos] = mapping[cells[pos]]
                    row = tuple(cells)
                kept.append(row)
            out[name] = kept
        return out

    # ------------------------------------------------------------------
    # statistics catalog
    # ------------------------------------------------------------------
    def analyze(self) -> Dict[str, Dict]:
        """Recompute every table's statistics sketches from live rows.

        The incremental maintenance keeps counts exact but leaves
        min/max as conservative bounds after deletes; ``analyze()``
        re-tightens them.  Bumps the per-table stats generations, so
        cached cost-based plans re-cost on their next lookup (stats
        changes invalidate exactly like data changes).  Returns the
        refreshed per-table summaries.
        """
        self._require_built()
        return self.catalog.analyze()

    def statistics(self) -> Dict[str, Dict]:
        """Per-table, per-column sketch summaries (n, distinct, bounds,
        most common values) as plain dicts."""
        self._require_built()
        return {
            name: stats.describe()
            for name, stats in self.catalog.stats.items()
        }

    # ------------------------------------------------------------------
    # durable token image
    # ------------------------------------------------------------------
    def snapshot(self, path: str) -> Dict[str, int]:
        """Write the database to a durable image file at ``path``.

        One versioned, checksummed file captures the whole token state
        -- FTL mapping, live flash pages, catalog, delta logs,
        statistics sketches, cost ledger and audit log -- plus the
        Untrusted visible image.  :meth:`restore` maps it back in
        milliseconds with zero replay.  Written atomically (temp file +
        rename); refuses to run before :meth:`build` or while an
        incremental compaction job is in flight
        (:class:`~repro.errors.PersistError`).  Returns a size summary.
        """
        from repro.persist.image import snapshot_db
        return snapshot_db(self, path)

    @classmethod
    def restore(cls, path: str, verify: bool = False) -> "GhostDB":
        """Load a database from a :meth:`snapshot` image.

        Restore cost is O(metadata): page payloads stay in the
        ``mmap``-ed image until first read.  The restored database is
        bit-identical to the snapshotted one -- same query results,
        simulated costs, audit log, statistics and future GC behaviour.
        ``verify=True`` additionally checks the page-blob checksum
        (touches the whole file).  Raises
        :class:`~repro.errors.ImageError` on torn, truncated or
        corrupt images.

        Fleet manifests (written by ``GhostDB(shards=N).snapshot()``)
        are detected by magic and restored to a
        :class:`~repro.shard.fleet.ShardedGhostDB` -- one entry point
        for both deployment shapes.
        """
        from repro.shard.persist import FLEET_MAGIC, restore_fleet
        try:
            with open(path, "rb") as fh:
                magic = fh.read(len(FLEET_MAGIC))
        except OSError:
            magic = b""  # restore_db raises its canonical ImageError
        if magic == FLEET_MAGIC:
            return restore_fleet(path, verify=verify)
        from repro.persist.image import restore_db
        return restore_db(path, verify=verify)

    # ------------------------------------------------------------------
    # crash recovery
    # ------------------------------------------------------------------
    def recover(self) -> RecoveryReport:
        """Bring the token back to a consistent state after a fault.

        Idempotent, milliseconds: power-cycles the NAND (clears the
        power-loss latch), aborts any in-flight compaction jobs (their
        writes went to shadow files; abort-and-restart is the
        compaction crash contract), rolls back an uncommitted DML
        statement via its :class:`StatementJournal`, runs the
        checksum recovery scan over every mapped page, and drops the
        page cache (host-side only; cached bytes may predate the
        fault).  Returns a :class:`RecoveryReport` of what was done.
        """
        self._require_built()
        report = RecoveryReport()
        if self.token.nand.failed:
            report.power_cycled = True
            self.token.nand.power_on()
            # volatile RAM does not survive the reboot: reclaim any
            # buffers the interrupted statement left allocated
            self.token.ram.power_cycle()
        self.token.store.journal = None
        if self._compactor is not None:
            report.compactions_aborted = self._compactor.abort_all()
        journal = self._journal
        if journal is not None and not journal.committed:
            journal.rollback()
            report.rolled_back_table = journal.table
            self._journal = None
        report.corrupt_pages = self.token.ftl.scan_mapped()
        self.token.store.page_cache.clear()
        return report

    def undo_last_dml(self) -> Optional[str]:
        """Roll back the last *committed* DML statement, if undoable.

        The fleet's two-phase abort path: when a sibling shard dies
        mid-statement, every shard that already applied its slice is
        rolled back so the whole fleet lands at its pre-statement
        generations.  Returns the rolled-back table name, or ``None``
        when there is nothing to undo.
        """
        journal = self._journal
        if journal is None or journal.rolled_back:
            return None
        journal.rollback()
        self._journal = None
        return journal.table

    # ------------------------------------------------------------------
    # oracle, audit, reports
    # ------------------------------------------------------------------
    def reference_query(self, sql: str) -> Tuple[List[str], List[Tuple]]:
        """Ground-truth evaluation (test oracle -- ignores the token)."""
        self._require_built()
        bound = self._binder.bind_sql(sql)
        return self._reference.execute(bound)

    def audit_outbound(self):
        """Everything that ever left the Secure token."""
        return self.token.channel.audit_outbound()

    def storage_report(self) -> Dict[str, int]:
        """Flash bytes per stored component family."""
        self._require_built()
        return self.catalog.storage_report()

    def set_throughput(self, mbps: float) -> None:
        """Change the simulated channel throughput (Figure 14)."""
        self.token.set_throughput(mbps)
