"""Reference engine: a naive in-memory SQL evaluator used as a test
oracle.

It evaluates bound queries directly over the raw loaded rows with no
indexes, no RAM constraint and no trust boundary, producing the ground
truth every GhostDB strategy must match bit-for-bit.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.aggregate import apply_aggregates, effective_projections
from repro.errors import PlanError
from repro.schema.model import Schema
from repro.sql.binder import BoundColumn, BoundQuery


class ReferenceEngine:
    """Ground-truth evaluator over the loader's raw rows.

    ``rows`` and ``tombstones`` are shared (mutable) with the catalog,
    so the oracle tracks incremental INSERTs and DELETEs for free:
    appended rows show up, tombstoned ids are skipped.
    """

    def __init__(self, schema: Schema, rows: Dict[str, List[Tuple]],
                 tombstones: Optional[Dict[str, Set[int]]] = None):
        self.schema = schema
        self.rows = rows
        self.tombstones = tombstones or {}

    # ------------------------------------------------------------------
    def _descend_id(self, table: str, rid: int, target: str) -> int:
        """The single ``target`` id below tuple ``rid`` of ``table``."""
        if table == target:
            return rid
        path: List[str] = []
        cur = target
        while cur != table:
            parent = self.schema.parent(cur)
            if parent is None:
                raise PlanError(f"{target} is not below {table}")
            path.append(cur)
            cur = parent
        current_table, current_id = table, rid
        for child in reversed(path):
            fk = self.schema.fk_to(current_table, child)
            pos = self.schema.table(current_table).column_position(fk.name)
            current_id = self.rows[current_table][current_id][pos]
            current_table = child
        return current_id

    def _value(self, col: BoundColumn, ids: Dict[str, int]):
        rid = ids[col.table]
        if col.column.is_id:
            return rid
        pos = self.schema.table(col.table).column_position(col.column.name)
        return self.rows[col.table][rid][pos]

    @staticmethod
    def _matches(predicate, value) -> bool:
        op = predicate.op
        if op == "=":
            return value == predicate.value
        if op == "<":
            return value < predicate.value
        if op == "<=":
            return value <= predicate.value
        if op == ">":
            return value > predicate.value
        if op == ">=":
            return value >= predicate.value
        if op == "between":
            return predicate.value <= value <= predicate.value2
        if op == "in":
            return value in (predicate.values or ())
        raise PlanError(f"unknown op {op!r}")  # pragma: no cover

    # ------------------------------------------------------------------
    def execute(self, bound: BoundQuery
                ) -> Tuple[List[str], List[Tuple]]:
        """Evaluate the query; rows come out in anchor-id order (or the
        requested ``ORDER BY`` order, ties broken by anchor id)."""
        anchor = bound.anchor
        projections = (effective_projections(bound) if bound.is_aggregate
                       else bound.projections)
        dead = self.tombstones.get(anchor, ())
        out: List[Tuple] = []
        keys: List[Tuple] = []          # ORDER BY values per output row
        for rid in range(len(self.rows[anchor])):
            if rid in dead:
                # deletes RESTRICT, so skipping dead anchors suffices
                continue
            ids = {t: self._descend_id(anchor, rid, t)
                   for t in bound.tables}
            ok = True
            for sel in bound.selections:
                value = self._value(
                    BoundColumn(sel.table, sel.column), ids
                )
                if not self._matches(sel.predicate, value):
                    ok = False
                    break
            if ok:
                out.append(tuple(self._value(c, ids) for c in projections))
                if bound.order_by and not bound.is_aggregate:
                    keys.append(tuple(self._value(item.column, ids)
                                      for item in bound.order_by))
        if bound.is_aggregate:
            names, out = apply_aggregates(bound, projections, out)
            group_pos = {c: i for i, c in enumerate(bound.group_by)}
            keys = [tuple(row[group_pos[item.column]]
                          for item in bound.order_by) for row in out]
            return names, self._apply_order(bound, out, keys)
        if bound.distinct:
            # SELECT DISTINCT: first occurrence wins, before ORDER BY.
            # Sort keys are projected values (the binder enforces it),
            # so surviving rows keep consistent keys.
            seen = set()
            deduped, dkeys = [], []
            for i, row in enumerate(out):
                if row not in seen:
                    seen.add(row)
                    deduped.append(row)
                    if keys:
                        dkeys.append(keys[i])
            out, keys = deduped, dkeys
        return ([str(c) for c in bound.projections],
                self._apply_order(bound, out, keys))

    @staticmethod
    def _apply_order(bound: BoundQuery, rows: List[Tuple],
                     keys: List[Tuple]) -> List[Tuple]:
        """Sort by the ORDER BY keys (stable, so ties keep anchor-id
        order) and apply OFFSET / LIMIT."""
        if bound.order_by:
            pairs = list(zip(keys, rows))
            # multi-pass stable sort, least significant key first, so
            # per-key ASC/DESC works for any orderable value type
            for pos in range(len(bound.order_by) - 1, -1, -1):
                pairs.sort(key=lambda kr, p=pos: kr[0][p],
                           reverse=bound.order_by[pos].desc)
            rows = [row for _, row in pairs]
        if bound.offset:
            rows = rows[bound.offset:]
        if bound.limit is not None:
            rows = rows[:bound.limit]
        return rows
