"""Executor for the selection-join phase (QEPSJ) and result assembly.

The global plan (paper Figure 6) is evaluated in two phases:

* **QEPSJ** (here): hidden selections via climbing indexes, visible
  selections via the per-table strategy (Pre/Post/Post-Select/NoFilter,
  optionally Cross-filtered), a RAM-bounded ``Merge`` producing sorted
  anchor IDs, and -- when any other table's IDs are needed -- a
  pipelined ``SJoin -> ProbeBF -> Store`` pass over ``SKT(anchor)``.
* **QEPP** (:mod:`repro.core.project`): the projection algorithm.

The executor owns the cost-label discipline that the decomposition
figures (15/16) rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.core.execmode import scalar_exec
from repro.core.merge import CHUNK, MergeOperator
from repro.core.operators import (
    STORE_LABEL,
    ExecContext,
    PostSelectFilter,
    op_build_bf,
    op_ci,
    op_ci_ids,
    op_probe_bf,
    op_probe_bf_chunks,
    op_sjoin,
    op_sjoin_chunks,
    op_store_columns,
    op_store_columns_chunks,
    op_vis,
)
from repro.core.plan import (
    QepSjResult,
    QueryPlan,
    VisPlan,
    VisStrategy,
)
from repro.storage.runs import (IdRun, U32FileBuilder, U32View,
                                difference_sorted)


@dataclass
class QueryStats:
    """Simulated cost report for one executed query."""

    total_s: float
    by_operator: Dict[str, float]
    counters: Dict[str, int]
    bytes_to_secure: int
    bytes_to_untrusted: int
    ram_peak: int
    result_rows: int

    def operator_s(self, label: str) -> float:
        return self.by_operator.get(label, 0.0)

    @classmethod
    def aggregate(cls, parts: Iterable["QueryStats"]) -> "QueryStats":
        """Combine per-query reports into one (batch execution).

        Times, byte counts and row counts sum; ``ram_peak`` takes the
        maximum, since the queries of a batch run sequentially on one
        token and never hold RAM simultaneously.
        """
        by_op: Dict[str, float] = {}
        counters: Dict[str, int] = {}
        total = QueryStats(
            total_s=0.0, by_operator=by_op, counters=counters,
            bytes_to_secure=0, bytes_to_untrusted=0, ram_peak=0,
            result_rows=0,
        )
        for part in parts:
            total.total_s += part.total_s
            for label, seconds in part.by_operator.items():
                by_op[label] = by_op.get(label, 0.0) + seconds
            for key, value in part.counters.items():
                counters[key] = counters.get(key, 0) + value
            total.bytes_to_secure += part.bytes_to_secure
            total.bytes_to_untrusted += part.bytes_to_untrusted
            total.ram_peak = max(total.ram_peak, part.ram_peak)
            total.result_rows += part.result_rows
        return total

    @classmethod
    def parallel(cls, parts: Iterable["QueryStats"],
                 merge_s: float = 0.0,
                 result_rows: Optional[int] = None) -> "QueryStats":
        """Combine per-shard reports that ran on *independent* tokens.

        Unlike :meth:`aggregate` (sequential batches on one token),
        the shards of a fleet execute concurrently on disjoint
        hardware, so the simulated makespan is the *slowest* shard
        plus the coordinator's ``merge_s``, while bytes and counters
        still sum (they measure work, not time).  ``by_operator``
        sums too -- it reports where fleet-wide work went, and
        therefore may exceed ``total_s``.  ``ram_peak`` is the
        largest single-token peak: shard RAM budgets are not fungible.
        """
        parts = list(parts)
        by_op: Dict[str, float] = {}
        counters: Dict[str, int] = {}
        combined = cls(
            total_s=merge_s, by_operator=by_op, counters=counters,
            bytes_to_secure=0, bytes_to_untrusted=0, ram_peak=0,
            result_rows=0,
        )
        makespan = 0.0
        for part in parts:
            makespan = max(makespan, part.total_s)
            for label, seconds in part.by_operator.items():
                by_op[label] = by_op.get(label, 0.0) + seconds
            for key, value in part.counters.items():
                counters[key] = counters.get(key, 0) + value
            combined.bytes_to_secure += part.bytes_to_secure
            combined.bytes_to_untrusted += part.bytes_to_untrusted
            combined.ram_peak = max(combined.ram_peak, part.ram_peak)
            combined.result_rows += part.result_rows
        combined.total_s += makespan
        if merge_s:
            by_op["Gather"] = by_op.get("Gather", 0.0) + merge_s
        if result_rows is not None:
            combined.result_rows = result_rows
        return combined


@dataclass
class QueryResult:
    """One executed SELECT: column names, rows, costs and the plan."""

    columns: List[str]
    rows: List[Tuple]
    stats: QueryStats
    plan: QueryPlan


class QepSjExecutor:
    """Runs the selection-join phase of one plan."""

    def __init__(self, ctx: ExecContext):
        self.ctx = ctx
        self.merge = MergeOperator(ctx.store, ctx.ram)

    # ------------------------------------------------------------------
    def tables_needed_beyond_anchor(self, plan: QueryPlan) -> List[str]:
        """Non-anchor tables whose IDs the QEPSJ result must carry."""
        bound = plan.bound
        needed: List[str] = []
        for col in bound.projections:
            source = self._projection_table(col)
            if source != bound.anchor and source not in needed:
                needed.append(source)
        for table, vp in plan.vis_plans.items():
            if table == bound.anchor:
                continue
            if vp.strategy in (VisStrategy.POST, VisStrategy.POST_SELECT,
                               VisStrategy.NOFILTER):
                if table not in needed:
                    needed.append(table)
        return needed

    def _projection_table(self, col) -> str:
        """Which table's ID column backs a projected column.

        A projected foreign key ``P.fk -> C`` is exactly ``C``'s id in
        the joined row, so it is served from ``C``'s column.
        """
        if col.column.is_foreign_key:
            return col.column.references
        return col.table

    # ------------------------------------------------------------------
    def _cross_runs_at(self, table: str) -> List[List[IdRun]]:
        """Hidden selections usable for Cross filtering at ``table``:
        those on the table itself or on its descendants (their climbing
        indexes carry sublists for ``table``)."""
        ctx = self.ctx
        out: List[List[IdRun]] = []
        for sel in ctx.bound.hidden_selections():
            if ctx.catalog.schema.is_ancestor(table, sel.table):
                out.append(op_ci(ctx, sel, table))
        return out

    def _vis_ids_after_cross(self, table: str, vp: VisPlan
                             ) -> Tuple[List[int], bool]:
        """The Vis ID list, intersected at ``table`` level when Cross."""
        ctx = self.ctx
        vis_ids = op_vis(ctx, table).ids
        if not vp.cross:
            return vis_ids, False
        cross_groups = self._cross_runs_at(table)
        if not cross_groups:
            return vis_ids, False
        groups = [[IdRun.memory(vis_ids)]] + cross_groups
        if scalar_exec():
            reduced = list(self.merge.stream(groups, reserve_buffers=2))
        else:
            reduced = []
            for chunk in self.merge.stream_chunks(groups,
                                                  reserve_buffers=2):
                reduced.extend(chunk)
        return reduced, True

    # ------------------------------------------------------------------
    def execute(self, plan: QueryPlan) -> QepSjResult:
        ctx = self.ctx
        bound = plan.bound
        anchor = bound.anchor

        groups: List[List[IdRun]] = []
        post_blooms: List[Tuple[str, object]] = []
        post_selects: List[Tuple[str, List[int]]] = []
        approx: set[str] = set()
        extra_tables = self.tables_needed_beyond_anchor(plan)
        # a Post Bloom must leave RAM for the pipelined Merge -> SJoin ->
        # Store pass; when it cannot get m=8n within that envelope its
        # accuracy degrades smoothly (paper section 3.4)
        pipeline_buffers = 4 + len(extra_tables)
        bloom_budget = max(
            1024,
            ctx.ram.free_bytes - pipeline_buffers * ctx.token.page_size,
        )

        for sel in bound.hidden_selections():
            groups.append(op_ci(ctx, sel, anchor))

        for table, vp in plan.vis_plans.items():
            ids, _crossed = self._vis_ids_after_cross(table, vp)
            if table == anchor:
                # anchor Vis IDs are already anchor IDs: free Pre-Filter
                groups.append([IdRun.memory(ids)])
                continue
            if vp.strategy is VisStrategy.PRE:
                groups.append(op_ci_ids(ctx, table, ids, anchor))
            elif vp.strategy is VisStrategy.POST:
                bf = op_build_bf(ctx, iter(ids), len(ids),
                                 max_bytes=bloom_budget)
                post_blooms.append((table, bf))
                approx.add(table)
            elif vp.strategy is VisStrategy.POST_SELECT:
                post_selects.append((table, ids))
            elif vp.strategy is VisStrategy.NOFILTER:
                approx.add(table)

        order = [anchor] + extra_tables
        position = {t: i for i, t in enumerate(order)}

        if scalar_exec():
            anchor_stream = self._anchor_stream(groups)
            if not extra_tables:
                view = self._materialize_anchor(anchor_stream)
                for _, bf in post_blooms:
                    bf.free()
                return QepSjResult(anchor=anchor, count=view.count,
                                   anchor_ids=view,
                                   columns={anchor: view},
                                   approx_tables=approx)
            tuples: Iterator[Tuple[int, ...]] = op_sjoin(
                ctx, anchor, anchor_stream, extra_tables
            )
            for table, bf in post_blooms:
                tuples = op_probe_bf(ctx, bf, tuples, position[table])
            columns, count = op_store_columns(ctx, tuples, order)
        else:
            anchor_chunks = self._anchor_chunks(groups)
            if not extra_tables:
                view = self._materialize_anchor_chunks(anchor_chunks)
                for _, bf in post_blooms:
                    bf.free()
                return QepSjResult(anchor=anchor, count=view.count,
                                   anchor_ids=view,
                                   columns={anchor: view},
                                   approx_tables=approx)
            chunks = op_sjoin_chunks(ctx, anchor, anchor_chunks,
                                     extra_tables)
            for table, bf in post_blooms:
                chunks = op_probe_bf_chunks(bf, chunks, position[table])
            columns, count = op_store_columns_chunks(ctx, chunks, order)

        for _, bf in post_blooms:
            bf.free()
        for table, ids in post_selects:
            columns, count = PostSelectFilter(ctx, ids).filter_columns(
                columns, count, table
            )
        return QepSjResult(anchor=anchor, count=count,
                           anchor_ids=columns[anchor], columns=columns,
                           approx_tables=approx)

    # ------------------------------------------------------------------
    def _anchor_stream(self, groups: List[List[IdRun]]) -> Iterator[int]:
        anchor = self.ctx.bound.anchor
        if groups:
            # reserve: 1 SJoin page + output builders + slack
            stream: Iterator[int] = self.merge.stream(groups,
                                                      reserve_buffers=4)
        else:
            # no restricting predicate at all: every anchor tuple
            # qualifies
            stream = iter(range(self.ctx.catalog.n_rows(anchor)))
        # tombstoned rows stay in every file (deletes are append-only)
        # and Untrusted keeps serving them; the token drops them here.
        # Deletes RESTRICT, so a live anchor never reaches a dead
        # descendant -- filtering the anchor ids suffices.
        dead = self.ctx.catalog.tombstones.get(anchor)
        if dead:
            return (rid for rid in stream if rid not in dead)
        return stream

    def _anchor_chunks(self, groups: List[List[IdRun]]
                       ) -> Iterator[List[int]]:
        """Batch twin of :meth:`_anchor_stream`: qualifying anchor ids
        in sorted page-sized chunks, tombstones dropped chunk-wise."""
        anchor = self.ctx.bound.anchor
        if groups:
            chunks: Iterator[List[int]] = self.merge.stream_chunks(
                groups, reserve_buffers=4)
        else:
            n = self.ctx.catalog.n_rows(anchor)
            chunks = (list(range(i, min(i + CHUNK, n)))
                      for i in range(0, n, CHUNK))
        dead = self.ctx.catalog.tombstones.get(anchor)
        if dead:
            # chunks are sorted and deduplicated, so the sorted set
            # difference equals the scalar per-id filter
            return (difference_sorted(chunk, dead) for chunk in chunks)
        return chunks

    def _materialize_anchor(self, stream: Iterator[int]) -> U32View:
        """Store the anchor ID list (the paper's ``Store`` cost)."""
        ctx = self.ctx
        builder = U32FileBuilder(ctx.store, ctx.ram, label="anchor ids")
        with ctx.label(STORE_LABEL):
            for value in stream:
                builder.add(value)
            return builder.finish()

    def _materialize_anchor_chunks(self, chunks: Iterator[List[int]]
                                   ) -> U32View:
        """Batch twin of :meth:`_materialize_anchor` (same pages,
        same ``Store`` charges, one append call per chunk)."""
        ctx = self.ctx
        builder = U32FileBuilder(ctx.store, ctx.ram, label="anchor ids")
        with ctx.label(STORE_LABEL):
            for chunk in chunks:
                builder.append_words(chunk)
            return builder.finish()
