"""Query-service layer: prepared statements, plan caching, batching.

``GhostDB.query()`` re-lexes, re-binds and re-plans its SQL on every
call -- fine for one-off experiments, wasteful for production-style
workloads that pose the same query template thousands of times.  This
module adds the reusable infrastructure on top of the facade:

* :class:`PreparedStatement` -- bind once, execute many.  ``?``
  placeholders in predicates are substituted per execution; the plan
  (per-table Vis strategies, projection mode) is computed once and
  reused via :meth:`QueryPlan.with_bound`.
* :class:`PlanCache` -- an LRU cache of :class:`QueryPlan` objects
  keyed on the *normalized* SQL text plus the strategy knobs, so
  whitespace or keyword-case variants of one query share a plan.  The
  cache is explicitly invalidated when the database is rebuilt.
* :class:`Session` -- one client's view of a :class:`GhostDB`: its own
  plan cache and the batched execution path :meth:`Session.query_many`,
  which amortizes the planner's selectivity probes and the
  Secure -> Untrusted round trips (query announcements and Vis
  requests are shipped in batch messages) across a whole batch and
  aggregates one :class:`QueryStats` per batch.

Everything here stays on the public side of the trust boundary: a
prepared statement's parameters are part of the user's query, which
GhostDB's security argument already assumes public.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import (TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional,
                    Sequence, Tuple, Union)

from repro.core.executor import QueryResult, QueryStats
from repro.core.operators import to_vis_predicates
from repro.core.plan import ProjectionMode, QueryPlan
from repro.core.planner import (SortMethodLike, StrategyLike, _coerce_mode,
                                _coerce_sort_method, _coerce_strategy)
from repro.errors import BindError, GhostDBError, SnapshotError
from repro.sql.binder import BoundQuery
from repro.sql.lexer import normalize_sql
from repro.untrusted.server import VisRequest, VisResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.ghostdb import GhostDB

#: how many Vis requests ride in one prefetch round trip
VIS_BATCH_SIZE = 64

#: cache key: (normalized sql, strategy, cross, projection, order method)
PlanKey = Tuple[str, Optional[str], Optional[bool], str, Optional[str]]


def plan_key(sql: str, vis_strategy: StrategyLike, cross: Optional[bool],
             projection: Union[str, ProjectionMode],
             order_method: SortMethodLike = None) -> PlanKey:
    """Cache key for one (statement, strategy-knobs) combination."""
    strategy = _coerce_strategy(vis_strategy)
    method = _coerce_sort_method(order_method)
    return (
        normalize_sql(sql),
        strategy.value if strategy is not None else None,
        cross,
        _coerce_mode(projection).value,
        method.value if method is not None else None,
    )


#: per-table ``(data, stats)`` generation pairs a cached plan was
#: computed against
GenSnapshot = Tuple[Tuple[str, Tuple[int, int]], ...]


class PlanCache:
    """A bounded LRU cache of query plans with hit/miss accounting.

    Entries carry the per-table *(data, stats) generations* they were
    planned against.  A lookup that passes the current generations
    drops (and counts as a miss) any entry whose tables have since
    been mutated by DML or whose statistics were refreshed -- so an
    INSERT into ``Patients`` invalidates only plans touching
    ``Patients``, never a cached ``Doctors``-only plan, and a stats
    change that could flip a cost-based strategy choice invalidates
    exactly like a data change.  ``GhostDB.rebuild()`` relies on the
    same mechanism: it bumps the generations of the tables mutated
    since the last build instead of flushing the cache globally.
    """

    def __init__(self, capacity: int = 64):
        if capacity <= 0:
            raise ValueError("plan cache capacity must be positive")
        self.capacity = capacity
        self._plans: "OrderedDict[PlanKey, Tuple[QueryPlan, GenSnapshot]]" \
            = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.stale_drops = 0

    def __len__(self) -> int:
        return len(self._plans)

    def __contains__(self, key: PlanKey) -> bool:
        return key in self._plans

    def get(self, key: PlanKey,
            current_gens: Optional[Dict[str, int]] = None
            ) -> Optional[QueryPlan]:
        entry = self._plans.get(key)
        if entry is None:
            self.misses += 1
            return None
        plan, gens = entry
        if current_gens is not None and any(
                current_gens.get(table, gen) != gen
                for table, gen in gens):
            # a table this plan touches was mutated since planning
            del self._plans[key]
            self.stale_drops += 1
            self.misses += 1
            return None
        self._plans.move_to_end(key)
        self.hits += 1
        return plan

    def put(self, key: PlanKey, plan: QueryPlan,
            gens: GenSnapshot = ()) -> None:
        self._plans[key] = (plan, gens)
        self._plans.move_to_end(key)
        while len(self._plans) > self.capacity:
            self._plans.popitem(last=False)
            self.evictions += 1

    def invalidate(self) -> None:
        """Drop every cached plan (the database was rebuilt)."""
        self._plans.clear()
        self.invalidations += 1


class PreparedStatement:
    """One bound statement: plan once, execute with fresh parameters.

    Obtained from :meth:`Session.prepare` (or ``GhostDB.prepare``).
    ``?`` placeholders are numbered left to right; :meth:`execute`
    takes one value per placeholder.
    """

    def __init__(self, session: "Session", sql: str,
                 vis_strategy: StrategyLike = None,
                 cross: Optional[bool] = None,
                 projection: Union[str, ProjectionMode] = "project",
                 order_method: SortMethodLike = None,
                 parsed=None):
        self.session = session
        self.sql = sql
        self._vis_strategy = vis_strategy
        self._cross = cross
        self._projection = projection
        self._order_method = order_method
        self._key = plan_key(sql, vis_strategy, cross, projection,
                             order_method)
        db = session.db
        db._require_built()
        self.template: BoundQuery = db._bind(sql, parsed)
        self.executions = 0

    @property
    def param_count(self) -> int:
        return self.template.param_count

    # ------------------------------------------------------------------
    def plan_for(self, bound: BoundQuery,
                 generations: Optional[Dict[str, Tuple[int, int]]] = None
                 ) -> QueryPlan:
        """The template plan, from the session cache or planned fresh.

        ``generations`` validates the cache entry against a caller-held
        (pinned) generation map instead of the live one -- the service
        layer plans against the same snapshot it executes under.
        """
        db = self.session.db
        cache = self.session.plan_cache
        gens = generations if generations is not None \
            else db.table_generations
        plan = cache.get(self._key, gens)
        if plan is None:
            plan = db._planner.plan(
                bound, self._vis_strategy, self._cross, self._projection,
                self._order_method,
            )
            cache.put(self._key, plan,
                      db.catalog.generations_for(bound.tables))
        return plan

    def execute(self, params: Sequence = ()) -> QueryResult:
        """Run once with ``params`` substituted for the placeholders."""
        bound = self.template.substitute(tuple(params))
        plan = self.plan_for(bound).with_bound(bound)
        self.executions += 1
        return self.session.db.execute_plan(plan)

    def execute_many(self, param_sets: Sequence[Sequence],
                     prefetch_vis: bool = True) -> "BatchResult":
        """Run the template once per parameter set, batched.

        See :meth:`Session.query_many` for the amortizations applied.
        """
        return self.session._run_template_batch(self, param_sets,
                                                prefetch_vis)


@dataclass
class BatchResult:
    """Results and aggregated costs of one batched execution.

    ``stats`` covers the whole batch window -- including the shared
    planning probes and prefetch transfers that no single query owns --
    so ``stats.total_s`` is what the batch really cost the token.
    """

    results: List[QueryResult]
    stats: QueryStats
    plans_computed: int     # planner invocations during the batch
    cache_hits: int         # plan-cache hits during the batch

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[QueryResult]:
        return iter(self.results)

    def __getitem__(self, i: int) -> QueryResult:
        return self.results[i]


class Session:
    """One client's prepared statements and plan cache over a GhostDB.

    Sessions are cheap; a server would hold one per connection.  All
    sessions share the database's token and Untrusted engine -- only
    the caching layer is per-session.  ``GhostDB.rebuild()`` calls
    :meth:`invalidate` on every live session.
    """

    def __init__(self, db: "GhostDB", plan_cache_capacity: int = 64):
        db._require_built()
        self.db = db
        self.plan_cache = PlanCache(plan_cache_capacity)
        # bound templates are schema-derived (data-independent), so
        # this cache survives DML and rebuilds
        self._statements: "OrderedDict[PlanKey, PreparedStatement]" = \
            OrderedDict()
        db._sessions.add(self)

    # ------------------------------------------------------------------
    def prepare(self, sql: str,
                vis_strategy: StrategyLike = None,
                cross: Optional[bool] = None,
                projection: Union[str, ProjectionMode] = "project",
                order_method: SortMethodLike = None,
                parsed=None) -> PreparedStatement:
        """Bind ``sql`` (which may contain ``?`` placeholders) once."""
        return PreparedStatement(self, sql, vis_strategy, cross,
                                 projection, order_method, parsed)

    def query(self, sql: str, params: Optional[Sequence] = None,
              vis_strategy: StrategyLike = None,
              cross: Optional[bool] = None,
              projection: Union[str, ProjectionMode] = "project",
              order_method: SortMethodLike = None,
              parsed=None) -> QueryResult:
        """Like legacy ``GhostDB.query`` but through the plan cache.

        ``parsed`` lets callers that already parsed the statement
        (``GhostDB.execute``) skip the re-parse; parameterized calls
        reuse a cached bound template, so a hot loop re-binds nothing.
        """
        if params is not None:
            key = plan_key(sql, vis_strategy, cross, projection,
                           order_method)
            stmt = self._statements.get(key)
            if stmt is None:
                stmt = self.prepare(sql, vis_strategy, cross, projection,
                                    order_method, parsed)
                self._statements[key] = stmt
                while len(self._statements) > self.plan_cache.capacity:
                    self._statements.popitem(last=False)
            return stmt.execute(params)
        plan = self._plan_cached(sql, vis_strategy, cross, projection,
                                 order_method, parsed)
        return self.db.execute_plan(plan)

    def query_many(self,
                   sql: Union[str, Sequence[str]],
                   param_sets: Optional[Sequence[Sequence]] = None,
                   vis_strategy: StrategyLike = None,
                   cross: Optional[bool] = None,
                   projection: Union[str, ProjectionMode] = "project",
                   order_method: SortMethodLike = None,
                   prefetch_vis: bool = True) -> BatchResult:
        """Execute a batch of queries with amortized round trips.

        Two shapes are accepted:

        * ``query_many(template_sql, param_sets)`` -- one parameterized
          template executed once per parameter set (planned at most
          once);
        * ``query_many([sql1, sql2, ...])`` -- heterogeneous statements,
          each planned through the session's plan cache.

        In both shapes the batch sends one combined query announcement,
        prefetches all Vis requests in :data:`VIS_BATCH_SIZE` chunks
        (one round trip per chunk instead of one per request), and
        returns per-query results plus one aggregated
        :class:`QueryStats` for the batch.
        """
        if isinstance(sql, str):
            stmt = self.prepare(sql, vis_strategy, cross, projection,
                                order_method)
            if param_sets is None:
                param_sets = [()]
            return self._run_template_batch(stmt, param_sets, prefetch_vis)
        if param_sets is not None:
            raise GhostDBError(
                "param_sets requires a single SQL template, not a list "
                "of statements"
            )
        return self._run_sql_batch(list(sql), vis_strategy, cross,
                                   projection, order_method, prefetch_vis)

    def invalidate(self) -> None:
        """Drop cached plans (called by ``GhostDB.rebuild()``)."""
        self.plan_cache.invalidate()

    # ------------------------------------------------------------------
    # snapshot-pinned execution (the service layer's isolation path)
    # ------------------------------------------------------------------
    def pin_generations(self, tables: Optional[Iterable[str]] = None
                        ) -> Dict[str, Tuple[int, int]]:
        """Snapshot the per-table ``(data, stats)`` generations.

        The returned map is the statement's *snapshot pin*: pass it to
        :meth:`execute_pinned` and the execution is guaranteed (by
        assertion, not sampling) to have observed exactly these
        generations for every touched table.
        """
        gens = self.db.table_generations
        if tables is None:
            return dict(gens)
        return {t: gens[t] for t in tables}

    def execute_pinned(self, plan: QueryPlan,
                       pinned: Dict[str, Tuple[int, int]],
                       announce: bool = True) -> QueryResult:
        """Run an already-planned SELECT under a generation pin.

        Raises :class:`~repro.errors.SnapshotError` if any touched
        table's generations differ from ``pinned`` either at start or
        after execution -- a reader can therefore never return rows
        derived from a mixed-generation state.  (DML and compaction are
        serialized on the writer lane and statements execute atomically
        on the token, so under the service this assertion documents and
        *enforces* the isolation the architecture provides.)
        """
        self._check_pin(plan, pinned, "at statement start")
        result = self.db.execute_plan(plan, announce=announce)
        self._check_pin(plan, pinned, "after execution")
        return result

    def _check_pin(self, plan: QueryPlan,
                   pinned: Dict[str, Tuple[int, int]], when: str) -> None:
        live = self.db.table_generations
        moved = {
            t: (gen, live.get(t))
            for t, gen in pinned.items()
            if t in plan.bound.tables and live.get(t) != gen
        }
        if moved:
            raise SnapshotError(
                f"pinned generations violated {when}: "
                + ", ".join(
                    f"{t} pinned {was} now {now}"
                    for t, (was, now) in sorted(moved.items())
                )
            )

    # ------------------------------------------------------------------
    def _plan_cached(self, sql: str, vis_strategy: StrategyLike,
                     cross: Optional[bool],
                     projection: Union[str, ProjectionMode],
                     order_method: SortMethodLike = None,
                     parsed=None) -> QueryPlan:
        key = plan_key(sql, vis_strategy, cross, projection, order_method)
        plan = self.plan_cache.get(key, self.db.table_generations)
        if plan is None:
            bound = self.db._bind(sql, parsed)
            if bound.has_parameters:
                raise BindError(
                    "statement has ? placeholders: use prepare() or "
                    "pass params"
                )
            plan = self.db._planner.plan(bound, vis_strategy, cross,
                                         projection, order_method)
            self.plan_cache.put(key, plan,
                                self.db.catalog.generations_for(
                                    bound.tables))
        return plan

    # ------------------------------------------------------------------
    # batched execution
    # ------------------------------------------------------------------
    def _run_template_batch(self, stmt: PreparedStatement,
                            param_sets: Sequence[Sequence],
                            prefetch_vis: bool) -> BatchResult:
        param_sets = [tuple(p) for p in param_sets]
        if not param_sets:
            return BatchResult([], QueryStats.aggregate(()), 0, 0)
        bounds = [stmt.template.substitute(p) for p in param_sets]
        window = self._open_window()
        plan = stmt.plan_for(bounds[0])
        plans = [plan.with_bound(b) for b in bounds]
        # one audited message carries the template and every value set
        nbytes = max(1, len(stmt.sql)) + 8 * stmt.param_count * len(bounds)
        self._announce_batch(nbytes, len(plans), stmt.sql)
        stmt.executions += len(plans)
        return self._execute_plans(plans, prefetch_vis, window)

    def _run_sql_batch(self, sqls: List[str],
                       vis_strategy: StrategyLike, cross: Optional[bool],
                       projection: Union[str, ProjectionMode],
                       order_method: SortMethodLike,
                       prefetch_vis: bool) -> BatchResult:
        if not sqls:
            return BatchResult([], QueryStats.aggregate(()), 0, 0)
        window = self._open_window()
        plans = [self._plan_cached(s, vis_strategy, cross, projection,
                                   order_method)
                 for s in sqls]
        nbytes = sum(max(1, len(s)) for s in sqls)
        self._announce_batch(nbytes, len(plans), sqls[0])
        return self._execute_plans(plans, prefetch_vis, window)

    # ------------------------------------------------------------------
    def _open_window(self) -> Tuple:
        """Snapshot the token's ledgers before a batch."""
        db = self.db
        ch = db.token.channel.stats
        return (db.token.ledger.snapshot(), ch.bytes_to_secure,
                ch.bytes_to_untrusted, db._planner.plans_built,
                self.plan_cache.hits)

    def _announce_batch(self, nbytes: int, n: int, head_sql: str) -> None:
        """The batch's query texts leave Secure in a single message."""
        token = self.db.token
        with token.label("Vis"):
            token.channel.to_untrusted(
                nbytes, kind="query",
                description=f"batch[{n}] {head_sql[:60]}",
            )

    def _prefetch_vis(self, plans: Sequence[QueryPlan]
                      ) -> List[Dict[Tuple[str, Tuple[str, ...]],
                                     VisResult]]:
        """Download every plan's Vis ID lists in batched round trips.

        Identical requests (same table and predicate values -- common
        when parameter sets repeat) are deduplicated and downloaded
        once; each execution's context is seeded with its share.
        """
        wanted: List[List[Tuple[Tuple[str, Tuple[str, ...]],
                                VisRequest]]] = []
        unique: "OrderedDict[VisRequest, Optional[VisResult]]" = \
            OrderedDict()
        for plan in plans:
            per_plan = []
            for table in plan.vis_plans:
                preds = to_vis_predicates(
                    plan.bound.visible_selections(table)
                )
                request = VisRequest(table, preds)
                unique.setdefault(request, None)
                per_plan.append(((table, ()), request))
            wanted.append(per_plan)
        requests = list(unique)
        server = self.db._vis_server
        with self.db.token.label("Vis"):
            for start in range(0, len(requests), VIS_BATCH_SIZE):
                chunk = requests[start:start + VIS_BATCH_SIZE]
                for request, result in zip(chunk,
                                           server.vis_batch(chunk)):
                    unique[request] = result
        return [
            {slot: unique[request] for slot, request in per_plan}
            for per_plan in wanted
        ]

    def _execute_plans(self, plans: List[QueryPlan], prefetch_vis: bool,
                       window: Tuple) -> BatchResult:
        db = self.db
        seeds: Sequence[Optional[Dict]] = (
            self._prefetch_vis(plans) if prefetch_vis
            else [None] * len(plans)
        )
        results = [
            db.execute_plan(plan, announce=False, vis_seed=seed)
            for plan, seed in zip(plans, seeds)
        ]
        before, in0, out0, plans0, hits0 = window
        ch = db.token.channel.stats
        per_query = QueryStats.aggregate(r.stats for r in results)
        stats = db._stats_between(before, db.token.ledger.snapshot(),
                                  rows=())
        stats.result_rows = per_query.result_rows
        stats.ram_peak = per_query.ram_peak
        stats.bytes_to_secure = ch.bytes_to_secure - in0
        stats.bytes_to_untrusted = ch.bytes_to_untrusted - out0
        return BatchResult(
            results=results, stats=stats,
            plans_computed=db._planner.plans_built - plans0,
            cache_hits=self.plan_cache.hits - hits0,
        )
