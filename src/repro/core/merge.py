"""The Merge operator: RAM-bounded CNF evaluation over sorted ID runs.

``Merge`` computes ``(L1 ∩ L2 ... ∩ Lk)`` where each ``Li`` is itself a
union of sorted sublists (``Li1 ∪ Li2 ∪ ...``) -- the shape produced by
range predicates and by Vis-ID climbs.  All (sub)lists are sorted on
the same IDs, so the whole expression streams with one RAM buffer per
open sublist plus one output buffer.

When the sublists outnumber the available buffers, a *reduction phase*
(the paper's first alternative in section 3.4) pre-merges the smallest
sublists of a group through flash temporaries until the remainder fits.
Reduction is linear in the merged sublists' sizes, which is why the
smallest ones are the best candidates.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.errors import PlanError
from repro.flash.store import FlashStore
from repro.hardware.ram import SecureRam
from repro.storage.runs import IdRun, U32FileBuilder

MERGE_LABEL = "Merge"


def _dedupe(it: Iterator[int]) -> Iterator[int]:
    prev = None
    for x in it:
        if x != prev:
            yield x
            prev = x


def union_runs(runs: Sequence[IdRun], ram: Optional[SecureRam]
               ) -> Iterator[int]:
    """Stream the sorted, deduplicated union of ``runs``."""
    if not runs:
        return iter(())
    iters = [run.iterate(ram, label="merge input") for run in runs]
    return _dedupe(heapq.merge(*iters))


def intersect_iters(iters: List[Iterator[int]]) -> Iterator[int]:
    """Stream the intersection of sorted, deduplicated iterators."""
    if not iters:
        return
    if len(iters) == 1:
        yield from iters[0]
        return
    try:
        heads = []
        for it in iters:
            heads.append(next(it))
    except StopIteration:
        _close_all(iters)
        return
    try:
        while True:
            top = max(heads)
            matched = True
            for i, it in enumerate(iters):
                while heads[i] < top:
                    heads[i] = next(it)
                if heads[i] > top:
                    matched = False
            if matched:
                yield top
                for i, it in enumerate(iters):
                    heads[i] = next(it)
    except StopIteration:
        return
    finally:
        _close_all(iters)


def _close_all(iters: Iterable[Iterator]) -> None:
    for it in iters:
        close = getattr(it, "close", None)
        if close:
            close()


class MergeOperator:
    """Executes Merge expressions against one token's RAM and flash."""

    def __init__(self, store: FlashStore, ram: SecureRam):
        self.store = store
        self.ram = ram
        self.ledger = store.ftl.ledger
        self.reductions = 0

    # ------------------------------------------------------------------
    def _reduce_group(self, runs: List[IdRun], fold: int) -> List[IdRun]:
        """Merge the ``fold`` smallest flash runs of a group into one."""
        flash = sorted(
            (r for r in runs if r.buffers_needed > 0), key=lambda r: r.count
        )
        memory = [r for r in runs if r.buffers_needed == 0]
        victims, rest = flash[:fold], flash[fold:]
        with self.ledger.label(MERGE_LABEL):
            builder = U32FileBuilder(self.store, self.ram,
                                     label="merge reduce")
            for value in _dedupe(heapq.merge(
                    *(v.iterate(self.ram, label="merge reduce")
                      for v in victims))):
                builder.add(value)
            view = builder.finish()
        self.reductions += 1
        return memory + rest + [IdRun.flash(view)]

    def _fit_to_budget(self, groups: List[List[IdRun]],
                       reserve_buffers: int) -> List[List[IdRun]]:
        """Reduction phase: shrink run counts until buffers suffice."""
        groups = [list(g) for g in groups]
        while True:
            needed = sum(r.buffers_needed for g in groups for r in g)
            # the reserve is advisory: never starve Merge below one open
            # run when RAM is physically available for it
            budget = max(
                self.ram.free_buffers - reserve_buffers,
                min(1, self.ram.free_buffers),
            )
            if needed <= budget:
                return groups
            # reduce the group holding the most flash runs
            target = max(
                range(len(groups)),
                key=lambda i: sum(r.buffers_needed for r in groups[i]),
            )
            n_flash = sum(r.buffers_needed for r in groups[target])
            if n_flash < 2:
                raise PlanError(
                    "Merge cannot fit in RAM even after reduction "
                    f"(budget {budget} buffers, reserve {reserve_buffers})"
                )
            # reduction itself needs fold inputs + 1 output buffer, and
            # must stay within the reserve-aware budget: grabbing
            # free_buffers - 1 inputs would transiently occupy buffers
            # promised to downstream SJoin/Store operators.  Like the
            # budget itself, this is advisory at the floor: a reduction
            # pass cannot use fewer than 2 inputs + 1 output, so a
            # budget below 3 buffers is transiently exceeded rather
            # than failing the plan.
            fold = min(n_flash, max(2, budget - 1))
            groups[target] = self._reduce_group(groups[target], fold)

    # ------------------------------------------------------------------
    def stream(self, groups: Sequence[Sequence[IdRun]],
               reserve_buffers: int = 0) -> Iterator[int]:
        """Stream the CNF ``AND over groups ( OR over runs )``.

        ``reserve_buffers`` page buffers are left free for downstream
        pipelined operators (SJoin pages, output builders, Blooms).
        An empty group set is a contradiction-free no-op and yields
        nothing -- callers handle the "no predicates" case themselves.
        """
        if not groups:
            return iter(())
        fitted = self._fit_to_budget(list(groups), reserve_buffers)
        leaf_iters: List[Iterator[int]] = []
        union_iters: List[Iterator[int]] = []
        for g in fitted:
            its = [run.iterate(self.ram, label="merge input") for run in g]
            leaf_iters.extend(its)
            union_iters.append(_dedupe(heapq.merge(*its)))

        def _run() -> Iterator[int]:
            inner = intersect_iters(union_iters)
            try:
                while True:
                    # charge input-scan I/O to the Merge label even when
                    # a downstream operator (SJoin/Store) pulls the item
                    with self.ledger.label(MERGE_LABEL):
                        try:
                            value = next(inner)
                        except StopIteration:
                            break
                    yield value
            finally:
                # free the buffers of any leaf not read to exhaustion
                _close_all(leaf_iters)

        return _run()

    def to_flash(self, groups: Sequence[Sequence[IdRun]],
                 reserve_buffers: int = 0):
        """Materialize the Merge result as a flash-resident run view."""
        builder = U32FileBuilder(self.store, self.ram, label="merge output")
        stream = self.stream(groups, reserve_buffers=reserve_buffers + 1)
        with self.ledger.label(MERGE_LABEL):
            for value in stream:
                builder.add(value)
            return builder.finish()
