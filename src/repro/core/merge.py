"""The Merge operator: RAM-bounded CNF evaluation over sorted ID runs.

``Merge`` computes ``(L1 ∩ L2 ... ∩ Lk)`` where each ``Li`` is itself a
union of sorted sublists (``Li1 ∪ Li2 ∪ ...``) -- the shape produced by
range predicates and by Vis-ID climbs.  All (sub)lists are sorted on
the same IDs, so the whole expression streams with one RAM buffer per
open sublist plus one output buffer.

When the sublists outnumber the available buffers, a *reduction phase*
(the paper's first alternative in section 3.4) pre-merges the smallest
sublists of a group through flash temporaries until the remainder fits.
Reduction is linear in the merged sublists' sizes, which is why the
smallest ones are the best candidates.

Two engines share the planning/reduction logic:

* the **batch** engine (default): :meth:`MergeOperator.stream_chunks`
  unions and intersects decoded pages of ids at a time.  Union rounds
  splice the in-RAM page portions below the smallest loaded page tail;
  intersection runs the classic max-based pointer algorithm over the
  union cursors, skipping inside a loaded page with ``bisect``.  Page
  reads, buffer lifetimes and cost-label attribution are exactly the
  scalar engine's -- pages are only ever loaded when the value stream
  crosses them, in the same consumption order.
* the **scalar** reference engine (``REPRO_SCALAR_EXEC=1``):
  ``heapq.merge`` + id-at-a-time intersection, kept verbatim for the
  differential tests.
"""

from __future__ import annotations

import heapq
from bisect import bisect_right
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.core.execmode import scalar_exec
from repro.errors import PlanError
from repro.flash.store import FlashStore
from repro.hardware.ram import SecureRam
from repro.storage.runs import (IdRun, U32FileBuilder, dedupe_sorted,
                                galloping_search, union_sorted)

MERGE_LABEL = "Merge"

#: output chunk size of the batch pipelines (one flash page of ids)
CHUNK = 512


def _dedupe(it: Iterator[int]) -> Iterator[int]:
    prev = None
    for x in it:
        if x != prev:
            yield x
            prev = x


def union_runs(runs: Sequence[IdRun], ram: Optional[SecureRam]
               ) -> Iterator[int]:
    """Stream the sorted, deduplicated union of ``runs``."""
    if not runs:
        return iter(())
    iters = [run.iterate(ram, label="merge input") for run in runs]
    return _dedupe(heapq.merge(*iters))


def intersect_iters(iters: List[Iterator[int]]) -> Iterator[int]:
    """Stream the intersection of sorted, deduplicated iterators."""
    if not iters:
        return
    if len(iters) == 1:
        yield from iters[0]
        return
    try:
        heads = []
        for it in iters:
            heads.append(next(it))
    except StopIteration:
        _close_all(iters)
        return
    try:
        while True:
            top = max(heads)
            matched = True
            for i, it in enumerate(iters):
                while heads[i] < top:
                    heads[i] = next(it)
                if heads[i] > top:
                    matched = False
            if matched:
                yield top
                for i, it in enumerate(iters):
                    heads[i] = next(it)
    except StopIteration:
        return
    finally:
        _close_all(iters)


def _close_all(iters: Iterable[Iterator]) -> None:
    for it in iters:
        close = getattr(it, "close", None)
        if close:
            close()


def _flatten_chunks(chunks: Iterator[List[int]]) -> Iterator[int]:
    """Scalar view of a chunk stream; closing it closes the source."""
    try:
        for chunk in chunks:
            yield from chunk
    finally:
        close = getattr(chunks, "close", None)
        if close:
            close()


# ---------------------------------------------------------------------------
# batch (page-at-a-time) primitives
# ---------------------------------------------------------------------------

class _PageCursor:
    """Consumption-driven cursor over one run's page chunks.

    The next page is loaded only when the current one is fully
    consumed -- the same on-demand pattern as an ``iterate()``
    generator feeding ``heapq.merge``, so the set of pages read (and
    the buffer's alloc/free points) match the scalar engine's.
    """

    __slots__ = ("_pages", "chunk", "pos")

    def __init__(self, pages: Iterator[List[int]]):
        self._pages = pages
        self.chunk: List[int] = []
        self.pos = 0

    def ensure(self) -> bool:
        """Make the current position valid; False when exhausted."""
        while self.pos >= len(self.chunk):
            nxt = next(self._pages, None)
            if nxt is None:
                return False
            self.chunk = nxt
            self.pos = 0
        return True

    def close(self) -> None:
        self._pages.close()


def union_pages(page_iters: List[Iterator[List[int]]]
                ) -> Iterator[List[int]]:
    """Chunked, deduplicated union of sorted page-chunk streams.

    Each round takes every member's loaded portion up to the smallest
    loaded tail and merges it with one sort -- members are refilled
    only once their loaded page is consumed, exactly when a k-way
    scalar merge would pull their next page.
    """
    if len(page_iters) == 1:
        it = page_iters[0]
        last: Optional[int] = None
        for page in it:
            out = dedupe_sorted(page, last)
            if out:
                yield out
                last = out[-1]
        return
    cursors = [_PageCursor(p) for p in page_iters]
    live = [c for c in cursors if c.ensure()]
    last = None
    while live:
        bound = min(c.chunk[-1] for c in live)
        portions: List[List[int]] = []
        for c in live:
            hi = bisect_right(c.chunk, bound, c.pos)
            if hi > c.pos:
                portions.append(c.chunk[c.pos:hi])
                c.pos = hi
        if len(portions) == 1:
            out = dedupe_sorted(portions[0])
        elif len(portions) == 2:
            out = union_sorted(portions[0], portions[1])
        else:
            out = sorted(set().union(*portions))
        # a value equal to the previous round's tail can reappear at
        # the head of a freshly loaded page (duplicates inside one run
        # straddling a page boundary); the scalar _dedupe drops it
        if last is not None and out and out[0] == last:
            del out[0]
        if out:
            yield out
            last = out[-1]
        live = [c for c in live if c.ensure()]


class _UnionCursor:
    """Value cursor over a chunked union stream, with in-page skipping."""

    __slots__ = ("_chunks", "chunk", "pos")

    def __init__(self, chunks: Iterator[List[int]]):
        self._chunks = chunks
        self.chunk: List[int] = []
        self.pos = 0

    def next(self) -> Optional[int]:
        """Consume and return the next value (None when exhausted)."""
        while self.pos >= len(self.chunk):
            nxt = next(self._chunks, None)
            if nxt is None:
                return None
            self.chunk = nxt
            self.pos = 0
        v = self.chunk[self.pos]
        self.pos += 1
        return v

    def advance_to(self, target: int) -> Optional[int]:
        """Consume values below ``target``; return the first >= it.

        Skips within an already-loaded page by galloping from the
        cursor (intersection advances are usually short); pages are
        still loaded one by one, in consumption order.
        """
        while True:
            i = galloping_search(self.chunk, target, self.pos)
            if i < len(self.chunk):
                self.pos = i + 1
                return self.chunk[i]
            nxt = next(self._chunks, None)
            if nxt is None:
                return None
            self.chunk = nxt
            self.pos = 0

    def remaining_chunks(self) -> Iterator[List[int]]:
        """The rest of the stream, chunk-wise (single-group fast path)."""
        if self.pos < len(self.chunk):
            yield self.chunk[self.pos:]
            self.pos = len(self.chunk)
        for chunk in self._chunks:
            yield chunk

    def close(self) -> None:
        self._chunks.close()


def intersect_pages(cursors: List["_UnionCursor"]) -> Iterator[List[int]]:
    """Chunked intersection of union cursors.

    Runs the max-based pointer algorithm of :func:`intersect_iters`
    (same advance order, same early-exit on first exhaustion) but
    emits matches in chunks and skips within loaded pages via bisect.
    """
    if not cursors:
        return
    if len(cursors) == 1:
        yield from cursors[0].remaining_chunks()
        return
    heads: List[int] = []
    for c in cursors:
        v = c.next()
        if v is None:
            return
        heads.append(v)
    out: List[int] = []
    while True:
        top = max(heads)
        matched = True
        for i, c in enumerate(cursors):
            if heads[i] < top:
                v = c.advance_to(top)
                if v is None:
                    if out:
                        yield out
                    return
                heads[i] = v
            if heads[i] > top:
                matched = False
        if matched:
            out.append(top)
            if len(out) >= CHUNK:
                yield out
                out = []
            for i, c in enumerate(cursors):
                v = c.next()
                if v is None:
                    if out:
                        yield out
                    return
                heads[i] = v


class MergeOperator:
    """Executes Merge expressions against one token's RAM and flash."""

    def __init__(self, store: FlashStore, ram: SecureRam):
        self.store = store
        self.ram = ram
        self.ledger = store.ftl.ledger
        self.reductions = 0

    # ------------------------------------------------------------------
    def _reduce_group(self, runs: List[IdRun], fold: int) -> List[IdRun]:
        """Merge the ``fold`` smallest flash runs of a group into one."""
        flash = sorted(
            (r for r in runs if r.buffers_needed > 0), key=lambda r: r.count
        )
        memory = [r for r in runs if r.buffers_needed == 0]
        victims, rest = flash[:fold], flash[fold:]
        with self.ledger.label(MERGE_LABEL):
            builder = U32FileBuilder(self.store, self.ram,
                                     label="merge reduce")
            if scalar_exec():
                for value in _dedupe(heapq.merge(
                        *(v.iterate(self.ram, label="merge reduce")
                          for v in victims))):
                    builder.add(value)
            else:
                its = [v.iter_pages(self.ram, label="merge reduce")
                       for v in victims]
                for chunk in union_pages(its):
                    builder.append_words(chunk)
            view = builder.finish()
        self.reductions += 1
        return memory + rest + [IdRun.flash(view)]

    def _fit_to_budget(self, groups: List[List[IdRun]],
                       reserve_buffers: int) -> List[List[IdRun]]:
        """Reduction phase: shrink run counts until buffers suffice."""
        groups = [list(g) for g in groups]
        while True:
            needed = sum(r.buffers_needed for g in groups for r in g)
            # the reserve is advisory: never starve Merge below one open
            # run when RAM is physically available for it
            budget = max(
                self.ram.free_buffers - reserve_buffers,
                min(1, self.ram.free_buffers),
            )
            if needed <= budget:
                return groups
            # reduce the group holding the most flash runs
            target = max(
                range(len(groups)),
                key=lambda i: sum(r.buffers_needed for r in groups[i]),
            )
            n_flash = sum(r.buffers_needed for r in groups[target])
            if n_flash < 2:
                raise PlanError(
                    "Merge cannot fit in RAM even after reduction "
                    f"(budget {budget} buffers, reserve {reserve_buffers})"
                )
            # reduction itself needs fold inputs + 1 output buffer, and
            # must stay within the reserve-aware budget: grabbing
            # free_buffers - 1 inputs would transiently occupy buffers
            # promised to downstream SJoin/Store operators.  Like the
            # budget itself, this is advisory at the floor: a reduction
            # pass cannot use fewer than 2 inputs + 1 output, so a
            # budget below 3 buffers is transiently exceeded rather
            # than failing the plan.
            fold = min(n_flash, max(2, budget - 1))
            groups[target] = self._reduce_group(groups[target], fold)

    # ------------------------------------------------------------------
    def stream_chunks(self, groups: Sequence[Sequence[IdRun]],
                      reserve_buffers: int = 0) -> Iterator[List[int]]:
        """Batch engine: the CNF result as sorted, deduplicated chunks.

        Same contract as :meth:`stream`, page-at-a-time: each yielded
        list holds up to one flash page of ids.  All input-scan I/O is
        charged to the Merge label chunk-wise.
        """
        if not groups:
            return iter(())
        fitted = self._fit_to_budget(list(groups), reserve_buffers)

        def _run() -> Iterator[List[int]]:
            page_iters: List[Iterator[List[int]]] = []
            union_cursors: List[_UnionCursor] = []
            for g in fitted:
                its = [run.iter_pages(self.ram, label="merge input")
                       for run in g]
                page_iters.extend(its)
                union_cursors.append(_UnionCursor(union_pages(its)))
            inner = intersect_pages(union_cursors)
            try:
                while True:
                    # charge input-scan I/O to the Merge label even
                    # when a downstream operator pulls the chunk
                    with self.ledger.label(MERGE_LABEL):
                        chunk = next(inner, None)
                    if chunk is None:
                        break
                    yield chunk
            finally:
                # free the buffers of any page not read to exhaustion
                _close_all(page_iters)

        return _run()

    def stream(self, groups: Sequence[Sequence[IdRun]],
               reserve_buffers: int = 0) -> Iterator[int]:
        """Stream the CNF ``AND over groups ( OR over runs )``.

        ``reserve_buffers`` page buffers are left free for downstream
        pipelined operators (SJoin pages, output builders, Blooms).
        An empty group set is a contradiction-free no-op and yields
        nothing -- callers handle the "no predicates" case themselves.
        """
        if not scalar_exec():
            return _flatten_chunks(self.stream_chunks(groups,
                                                      reserve_buffers))
        if not groups:
            return iter(())
        fitted = self._fit_to_budget(list(groups), reserve_buffers)
        leaf_iters: List[Iterator[int]] = []
        union_iters: List[Iterator[int]] = []
        for g in fitted:
            its = [run.iterate(self.ram, label="merge input") for run in g]
            leaf_iters.extend(its)
            union_iters.append(_dedupe(heapq.merge(*its)))

        def _run() -> Iterator[int]:
            inner = intersect_iters(union_iters)
            try:
                while True:
                    # charge input-scan I/O to the Merge label even when
                    # a downstream operator (SJoin/Store) pulls the item
                    with self.ledger.label(MERGE_LABEL):
                        try:
                            value = next(inner)
                        except StopIteration:
                            break
                    yield value
            finally:
                # free the buffers of any leaf not read to exhaustion
                _close_all(leaf_iters)

        return _run()

    def to_flash(self, groups: Sequence[Sequence[IdRun]],
                 reserve_buffers: int = 0):
        """Materialize the Merge result as a flash-resident run view."""
        builder = U32FileBuilder(self.store, self.ram, label="merge output")
        if not scalar_exec():
            stream = self.stream_chunks(groups,
                                        reserve_buffers=reserve_buffers + 1)
            with self.ledger.label(MERGE_LABEL):
                for chunk in stream:
                    builder.append_words(chunk)
                return builder.finish()
        stream = self.stream(groups, reserve_buffers=reserve_buffers + 1)
        with self.ledger.label(MERGE_LABEL):
            for value in stream:
                builder.add(value)
            return builder.finish()
