"""Bulk loader: splits rows between Untrusted and Secure and builds
the fully indexed model.

Hidden data reaches the token through a secure channel at provisioning
time (the paper: a key "burned by the database owner" or an SSL
download), so loading is *not* part of query cost -- callers normally
reset the token's ledger after :meth:`Loader.build`.

For each table the loader:

* sends the visible columns (plus implicit id) to the Untrusted engine,
* stores the hidden non-fk columns as the flash-resident hidden image,
* folds the foreign keys into the Subtree Key Tables ("SKT columns
  corresponding to foreign keys come for free"),
* builds a climbing index per indexed hidden attribute and per
  non-root table id.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import StorageError
from repro.core.catalog import SecureCatalog, TableImage
from repro.core.stats import TableStats
from repro.hardware.token import SecureToken
from repro.index.climbing import ClimbingIndex
from repro.index.skt import SubtreeKeyTable
from repro.schema.model import Schema
from repro.storage.codec import RowCodec
from repro.storage.heap import HeapFile
from repro.untrusted.engine import UntrustedEngine


class Loader:
    """Accumulates rows, then builds the token-resident database."""

    def __init__(self, schema: Schema, token: SecureToken,
                 untrusted: UntrustedEngine,
                 indexed_columns: Optional[Dict[str, Sequence[str]]] = None):
        """``indexed_columns`` restricts which hidden attributes get a
        climbing index (default: all hidden non-fk attributes)."""
        self.schema = schema
        self.token = token
        self.untrusted = untrusted
        self.indexed_columns = indexed_columns
        self._pending: Dict[str, List[Tuple]] = {
            name: [] for name in schema.tables
        }
        self.built = False

    # ------------------------------------------------------------------
    # accumulation
    # ------------------------------------------------------------------
    def add_rows(self, table: str, rows: Sequence[Tuple]) -> None:
        """Queue rows; values in :meth:`Table.data_columns` order
        (everything except the implicit id, which is assigned densely
        in insertion order)."""
        t = self.schema.table(table)
        width = len(t.data_columns)
        for row in rows:
            if len(row) != width:
                raise StorageError(
                    f"{table}: expected {width} values "
                    f"({[c.name for c in t.data_columns]}), got {len(row)}"
                )
            self._pending[table].append(tuple(row))

    # ------------------------------------------------------------------
    # build
    # ------------------------------------------------------------------
    def build(self) -> SecureCatalog:
        """Construct images, SKTs and indexes; returns the catalog."""
        if self.built:
            raise StorageError("loader already built")
        self._check_referential_integrity()
        catalog = SecureCatalog(self.schema, self.token)
        with self.token.label("Load"):
            self._load_visible()
            self._load_hidden_images(catalog)
            desc_maps = self._compute_descendant_maps()
            self._build_skts(catalog, desc_maps)
            anc_maps = self._compute_ancestor_maps()
            self._build_indexes(catalog, anc_maps)
            self._gather_stats(catalog)
        self.built = True
        return catalog

    # ------------------------------------------------------------------
    def _fk_values(self, table: str, child: str) -> List[int]:
        """Per-row fk values of ``table`` referencing ``child``."""
        t = self.schema.table(table)
        pos = t.column_position(self.schema.fk_to(table, child).name)
        return [row[pos] for row in self._pending[table]]

    def _check_referential_integrity(self) -> None:
        for name in self.schema.tables:
            for child in self.schema.children(name):
                limit = len(self._pending[child])
                for rid, fk in enumerate(self._fk_values(name, child)):
                    if not 0 <= fk < limit:
                        raise StorageError(
                            f"{name} row {rid}: fk {fk} out of range for "
                            f"{child} ({limit} rows)"
                        )

    def _load_visible(self) -> None:
        for name, rows in self._pending.items():
            t = self.schema.table(name)
            positions = [t.column_position(c.name)
                         for c in t.visible_columns]
            self.untrusted.load(
                name, [tuple(r[p] for p in positions) for r in rows]
            )

    def _load_hidden_images(self, catalog: SecureCatalog) -> None:
        for name, rows in self._pending.items():
            t = self.schema.table(name)
            hidden = [c for c in t.hidden_columns if not c.is_foreign_key]
            heap = None
            if hidden:
                positions = [t.column_position(c.name) for c in hidden]
                codec = RowCodec([c.type for c in hidden])
                heap = HeapFile.build(
                    self.token.store, f"hidden_{name}", codec,
                    (tuple(r[p] for p in positions) for r in rows),
                    self.token.page_size,
                )
            catalog.images[name] = TableImage(
                table=t, n_rows=len(rows), hidden_columns=hidden, heap=heap
            )

    # ------------------------------------------------------------------
    def _compute_descendant_maps(self) -> Dict[str, Dict[str, List[int]]]:
        """``maps[T][D][idT]`` = the single D id below tuple idT."""
        maps: Dict[str, Dict[str, List[int]]] = {}
        # process parents before their descendants' composition
        order = sorted(self.schema.tables, key=self.schema.depth)
        for name in order:
            maps[name] = {}
            for child in self.schema.children(name):
                direct = self._fk_values(name, child)
                maps[name][child] = direct
        # compose deepest-first so each child's map is already complete
        for name in reversed(order):
            for child in self.schema.children(name):
                direct = maps[name][child]
                # splice in the child's own descendant maps
                for deeper, sub in maps.get(child, {}).items():
                    maps[name][deeper] = [sub[i] for i in direct]
        return maps

    def _build_skts(self, catalog: SecureCatalog,
                    desc_maps: Dict[str, Dict[str, List[int]]]) -> None:
        for name in self.schema.tables:
            descendants = self.schema.descendants(name)
            if not descendants:
                continue
            cols = descendants
            columns_data = [desc_maps[name][d] for d in cols]
            n = len(self._pending[name])
            rows = (tuple(col[i] for col in columns_data) for i in range(n))
            catalog.skts[name] = SubtreeKeyTable.build(
                self.token.store, name, cols, rows, self.token.page_size
            )

    # ------------------------------------------------------------------
    def _compute_ancestor_maps(self) -> Dict[str, Dict[str, Dict[int, List[int]]]]:
        """``maps[T][A][idT]`` = sorted ids of ancestor A referencing idT."""
        maps: Dict[str, Dict[str, Dict[int, List[int]]]] = {
            name: {} for name in self.schema.tables
        }
        order = sorted(self.schema.tables, key=self.schema.depth)
        for name in order:
            parent = self.schema.parent(name)
            if parent is None:
                continue
            direct: Dict[int, List[int]] = {
                i: [] for i in range(len(self._pending[name]))
            }
            for pid, fk in enumerate(self._fk_values(parent, name)):
                direct[fk].append(pid)
            maps[name][parent] = direct
            for higher, pmap in maps[parent].items():
                maps[name][higher] = {
                    i: sorted(heapq.merge(*(pmap[p] for p in parents)))
                    if parents else []
                    for i, parents in direct.items()
                }
        return maps

    def _build_indexes(self, catalog: SecureCatalog, anc_maps) -> None:
        for name in self.schema.tables:
            t = self.schema.table(name)
            rows = self._pending[name]
            ancestors = self.schema.ancestors(name)
            levels = [name] + ancestors
            anc = {a: anc_maps[name][a] for a in ancestors}
            indexable = [c for c in t.hidden_columns
                         if not c.is_foreign_key]
            if self.indexed_columns is not None:
                wanted = set(self.indexed_columns.get(name, ()))
                indexable = [c for c in indexable if c.name in wanted]
            for col in indexable:
                pos = t.column_position(col.name)
                items = [(row[pos], rid) for rid, row in enumerate(rows)]
                catalog.attr_indexes[(name, col.name)] = ClimbingIndex.build(
                    self.token.store, f"{name}_{col.name}", col.type,
                    levels, items, anc, self.token.page_size,
                )
            if ancestors:  # id climbing index (root needs none)
                items = [(rid, rid) for rid in range(len(rows))]
                catalog.id_indexes[name] = ClimbingIndex.build(
                    self.token.store, f"{name}_id",
                    t.column("id").type, levels, items, anc,
                    self.token.page_size,
                )
        # keep raw rows available for the reference engine / tests
        catalog.raw_rows = dict(self._pending)

    def _gather_stats(self, catalog: SecureCatalog) -> None:
        """One statistics pass while the rows are still streaming by.

        Visible *and* hidden column sketches stay on the token (they
        never cross the channel), which is what lets the cost-based
        planner estimate selectivities without outbound probes.
        """
        for name, rows in self._pending.items():
            catalog.stats[name] = TableStats.from_rows(
                self.schema.table(name), rows
            )
