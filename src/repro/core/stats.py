"""The statistics catalog: per-column sketches for the cost-based planner.

The paper's experiments (Figures 9-13) show that the winning strategy
depends on predicate selectivities and table sizes, which means the
planner must *know* them.  Probing Untrusted with count requests works
(and is leak-free) but costs one round trip per planned table; the
token can do better by keeping its own statistics, gathered while the
rows stream through ``build()`` (and each table's compaction swap) and
maintained by the incremental DML append paths.

Each tracked column carries one :class:`ColumnStats` sketch:

* ``n`` -- exact live-value count (insert +1, delete -1);
* ``counts`` -- per-value frequencies, exact while the observed domain
  fits ``capacity`` distinct values; beyond that the least common
  entries spill into an aggregated *residual* (count + distinct
  estimate), Postgres-MCV style;
* ``min_key``/``max_key`` -- value bounds.  Inserts tighten/extend
  them; deletes leave them untouched, so after deletes they are
  conservative *bounds*, re-tightened by :meth:`TableStats.from_rows`
  at the next ``db.compact(table)`` (or ``GhostDB.analyze()``).

The sketches are planner metadata living beside the catalog on the
secure chip; like the climbing indexes' delta-key Bloom filters they
are charged to the token's storage budget conceptually, not to any
query's working RAM.  Nothing here ever crosses the channel: hidden
*and* visible column statistics stay on the token, which is exactly
what lets the planner estimate selectivities without a single
outbound probe.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.index.climbing import Predicate
from repro.schema.model import Table

#: distinct values tracked exactly before spilling into the residual;
#: covers the synthetic workloads' whole domains (v1 cycles 0..999)
DEFAULT_CAPACITY = 1024


@dataclass
class ColumnStats:
    """A frequency/bounds sketch over one column's live values."""

    capacity: int = DEFAULT_CAPACITY
    n: int = 0
    counts: Counter = field(default_factory=Counter)
    residual_count: int = 0
    residual_distinct: int = 0
    min_key: object = None
    max_key: object = None

    # ------------------------------------------------------------------
    # construction and maintenance
    # ------------------------------------------------------------------
    @classmethod
    def from_values(cls, values: Iterable,
                    capacity: int = DEFAULT_CAPACITY) -> "ColumnStats":
        """Gather a sketch over ``values`` from scratch."""
        stats = cls(capacity=capacity)
        for value in values:
            stats.add(value)
        return stats

    def add(self, value) -> None:
        """Record one inserted value."""
        self.n += 1
        if self.min_key is None or value < self.min_key:
            self.min_key = value
        if self.max_key is None or value > self.max_key:
            self.max_key = value
        if value in self.counts or len(self.counts) < self.capacity:
            self.counts[value] += 1
            return
        self._spill_for(value)

    def _spill_for(self, value) -> None:
        """Track ``value`` by evicting the least common entry if that
        entry is rarer; otherwise count it in the residual.

        A residual arrival may duplicate a value already spilled, but
        membership is unknowable without tracking it; counting each
        arrival as a fresh distinct keeps the per-value residual
        estimate (``residual_count / residual_distinct``) at ~1 --
        untracked values are rare by construction (the common ones are
        the tracked MCVs), so biasing their equality selectivity low
        is the right error for the optimizer."""
        victim, v_count = min(self.counts.items(), key=lambda kv: kv[1])
        if v_count <= 1:
            del self.counts[victim]
            self.residual_count += v_count
            self.residual_distinct += 1
            self.counts[value] = 1
        else:
            self.residual_count += 1
            self.residual_distinct += 1

    def remove(self, value) -> None:
        """Record one deleted value (bounds stay conservative)."""
        self.n -= 1
        if value in self.counts:
            self.counts[value] -= 1
            if self.counts[value] == 0:
                del self.counts[value]
        else:
            self.residual_count = max(0, self.residual_count - 1)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def n_distinct(self) -> int:
        """(Estimated) live distinct values."""
        return len(self.counts) + self.residual_distinct

    def most_common(self, k: int = 8) -> List[Tuple[object, int]]:
        """The ``k`` most common tracked values with their counts."""
        return self.counts.most_common(k)

    # ------------------------------------------------------------------
    # selectivity estimation
    # ------------------------------------------------------------------
    def _eq_count(self, value) -> float:
        if value in self.counts:
            return float(self.counts[value])
        if self.residual_distinct == 0:
            return 0.0
        return self.residual_count / self.residual_distinct

    def _interval_fraction(self, lo, hi) -> float:
        """Fraction of the [min, max] span covered by [lo, hi]
        (uniform assumption for untracked values)."""
        if self.min_key is None:
            return 0.0
        try:
            span = self.max_key - self.min_key
            if span <= 0:
                return 1.0 if lo <= self.min_key <= hi else 0.0
            lo = max(lo, self.min_key)
            hi = min(hi, self.max_key)
            return max(0.0, min(1.0, (hi - lo) / span))
        except TypeError:      # non-numeric (char) columns
            return 0.5

    def _range_count(self, predicate: Predicate) -> float:
        def _in_range(value) -> bool:
            op = predicate.op
            if op == "<":
                return value < predicate.value
            if op == "<=":
                return value <= predicate.value
            if op == ">":
                return value > predicate.value
            if op == ">=":
                return value >= predicate.value
            return predicate.value <= value <= predicate.value2
        tracked = sum(c for v, c in self.counts.items() if _in_range(v))
        if self.residual_count:
            lo, hi = self._bounds_of(predicate)
            tracked += self.residual_count * self._interval_fraction(lo, hi)
        return tracked

    def _bounds_of(self, predicate: Predicate) -> Tuple:
        op = predicate.op
        if op in ("<", "<="):
            return self.min_key, predicate.value
        if op in (">", ">="):
            return predicate.value, self.max_key
        return predicate.value, predicate.value2

    def selectivity(self, predicate: Predicate) -> float:
        """Estimated fraction of live rows satisfying ``predicate``."""
        if self.n <= 0:
            return 0.0
        op = predicate.op
        if op == "=":
            matched = self._eq_count(predicate.value)
        elif op == "in":
            matched = sum(self._eq_count(v)
                          for v in set(predicate.values or ()))
        else:
            matched = self._range_count(predicate)
        return max(0.0, min(1.0, matched / self.n))


class TableStats:
    """Sketches for every non-fk data column of one table."""

    def __init__(self, table: Table, capacity: int = DEFAULT_CAPACITY):
        self.table = table
        self.capacity = capacity
        self._positions = [
            (c.name, table.column_position(c.name))
            for c in table.data_columns if not c.is_foreign_key
        ]
        self.columns: Dict[str, ColumnStats] = {
            name: ColumnStats(capacity=capacity)
            for name, _ in self._positions
        }

    # ------------------------------------------------------------------
    @classmethod
    def from_rows(cls, table: Table, rows: Sequence[Tuple],
                  capacity: int = DEFAULT_CAPACITY) -> "TableStats":
        """Gather stats from scratch (build/rebuild/analyze path)."""
        stats = cls(table, capacity)
        for row in rows:
            stats.add_row(row)
        return stats

    @property
    def n_rows(self) -> int:
        """Live rows seen by the sketches (all columns agree)."""
        if not self._positions:
            return 0
        return self.columns[self._positions[0][0]].n

    def add_row(self, row: Tuple) -> None:
        """Fold one inserted row (``data_columns`` order) in."""
        for name, pos in self._positions:
            self.columns[name].add(row[pos])

    def remove_row(self, row: Tuple) -> None:
        """Fold one deleted row (``data_columns`` order) out."""
        for name, pos in self._positions:
            self.columns[name].remove(row[pos])

    def column(self, name: str) -> Optional[ColumnStats]:
        return self.columns.get(name)

    def distinct(self, name: str) -> Optional[int]:
        """Estimated live distinct values of one column.

        Feeds the planner's output-cardinality estimates -- GROUP BY
        group counts and the ordering step's run-count/top-k sizing --
        alongside :meth:`selectivity`.  ``None`` when the column is not
        sketched (foreign keys, unknown names).
        """
        stats = self.columns.get(name)
        return stats.n_distinct if stats is not None else None

    def selectivity(self, column: str, predicate: Predicate) -> float:
        """Estimated selectivity; unknown columns fall back to 0.5."""
        stats = self.columns.get(column)
        if stats is None:
            return 0.5
        return stats.selectivity(predicate)

    def describe(self) -> Dict[str, Dict]:
        """Plain-dict summary (tests, ``EXPLAIN``, docs)."""
        return {
            name: {
                "n": s.n,
                "n_distinct": s.n_distinct,
                "min": s.min_key,
                "max": s.max_key,
                "mcv": s.most_common(4),
            }
            for name, s in self.columns.items()
        }
