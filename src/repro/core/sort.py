"""Ordering operators: external sort, top-k heap, index-order scan.

GhostDB answers ``ORDER BY`` / ``LIMIT`` on the token, where RAM is
tiny, so ordering follows the same discipline as the Merge operator:
every buffer is accounted in :class:`~repro.hardware.ram.SecureRam`
and anything that does not fit spills to flash.

Three execution methods (the planner picks per query, see
:class:`~repro.core.plan.SortMethod`):

* :class:`ExternalSorter` -- classic external merge sort.  Sort keys
  are encoded order-preservingly (:class:`SortKeyCodec`), packed into
  u32 words and spilled as value-ordered runs through
  :class:`~repro.storage.runs.U32FileBuilder`; runs are merged with
  one page buffer per open run (reduction passes fold runs together
  when they outnumber the buffer budget, exactly like
  :class:`~repro.core.merge.MergeOperator`).
* :class:`TopKHeap` -- when ``offset + limit`` records fit in secure
  RAM, a bounded heap selects them in one pass with zero flash I/O.
* :class:`IndexOrderScan` -- sort avoidance: when the ORDER BY key is
  an indexed hidden column, the climbing index's value-ordered runs
  deliver anchor ids in key order already; the scan just maps them to
  result rows and stops early under ``LIMIT``.

Every record carries the row's position as its last word, so ties are
broken by anchor-id order -- the same stable semantics as the
reference oracle.  All I/O is charged to the ``Sort`` cost label.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.core.execmode import scalar_exec
from repro.core.operators import ExecContext
from repro.core.plan import OrderPlan, SortMethod
from repro.errors import PlanError
from repro.flash.store import FlashFile, FlashStore
from repro.hardware.ram import SecureRam
from repro.index.keys import KeyCodec
from repro.schema.model import ID_COLUMN, Schema
from repro.sql.binder import BoundColumn, BoundOrderItem, BoundQuery
from repro.storage.runs import U32FileBuilder, U32View

SORT_LABEL = "Sort"

#: one sort record: big-endian key words followed by the row position
Record = Tuple[int, ...]


def sort_projections(bound: BoundQuery, schema: Schema) -> BoundQuery:
    """Extend a query's projections with what its ordering step needs.

    The sort reads key values (and, for the index-order path, the
    anchor id) out of the projected rows, so any ORDER BY column or
    anchor id not already projected is appended as an *internal*
    column; :attr:`~repro.sql.binder.BoundQuery.internal_tail` records
    how many to strip from the result after ordering.  Aggregate
    queries are returned unchanged: their ORDER BY columns are
    restricted to GROUP BY columns, which the output always carries.
    """
    if bound.is_aggregate or not bound.order_by:
        return bound
    if bound.distinct:
        # the binder guarantees every sort key is already projected,
        # and extra columns would break duplicate elimination; the
        # index-order path (the one consumer of the anchor id) is
        # unavailable under DISTINCT anyway
        return bound
    projections = list(bound.projections)
    extra = 0
    for item in bound.order_by:
        if item.column not in projections:
            projections.append(item.column)
            extra += 1
    anchor_id = BoundColumn(bound.anchor,
                            schema.table(bound.anchor).column(ID_COLUMN))
    if anchor_id not in projections:
        projections.append(anchor_id)
        extra += 1
    if extra == 0:
        return bound
    return dataclasses.replace(bound, projections=tuple(projections),
                               internal_tail=bound.internal_tail + extra)


def dedup_rows(rows: List[Tuple]) -> List[Tuple]:
    """SELECT DISTINCT: drop duplicate rows, first occurrence wins.

    Runs before ORDER BY / LIMIT (SQL semantics), so the stable
    tie-break the sort operators provide becomes first-occurrence
    (anchor-id) order of the surviving rows.
    """
    seen = set()
    out: List[Tuple] = []
    for row in rows:
        if row not in seen:
            seen.add(row)
            out.append(row)
    return out


class SortKeyCodec:
    """Order-preserving multi-key encoding, packed into u32 words.

    Each key column reuses the B+-tree's :class:`KeyCodec` (integers
    offset-binary, floats bit-tricked, chars NUL-padded -- byte order
    == value order); descending keys are byte-complemented so one
    ascending merge realizes any ASC/DESC mix.  The concatenated key
    bytes are zero-padded to a word boundary and split into big-endian
    u32 words, and the row position is appended as the final word:
    records compare as plain int tuples, keys first, position last
    (the stable tie-break).
    """

    def __init__(self, keys: Sequence[BoundOrderItem]):
        self._codecs = [(KeyCodec(item.column.column.type), item.desc)
                        for item in keys]
        self.key_bytes = sum(c.width for c, _ in self._codecs)
        self.key_words = (self.key_bytes + 3) // 4
        #: u32 words per record (keys + 1 position word)
        self.words = self.key_words + 1
        #: bytes of secure RAM one resident record occupies
        self.entry_bytes = self.words * 4

    def encode(self, values: Sequence, position: int) -> Record:
        """Pack one row's key ``values`` and its ``position``."""
        raw = bytearray()
        for (codec, desc), value in zip(self._codecs, values):
            key = codec.encode(value)
            if desc:
                key = bytes(255 - b for b in key)
            raw += key
        raw += b"\x00" * (self.key_words * 4 - len(raw))
        return tuple(
            int.from_bytes(raw[i * 4:(i + 1) * 4], "big")
            for i in range(self.key_words)
        ) + (position,)

    @staticmethod
    def position(record: Record) -> int:
        """The row position a sorted-out record points back at."""
        return record[-1]


class ExternalSorter:
    """RAM-bounded external merge sort over encoded sort records.

    Run formation reserves one RAM chunk (everything left above the
    ``reserve_buffers`` promised to the output side), sorts it, and
    spills it as one value-ordered run -- a :class:`U32View` slice of a
    shared packed-u32 flash file, exactly how climbing-index runs are
    stored.  When the input fits one chunk nothing is spilled.  The
    merge holds one page buffer per open run; if runs outnumber the
    budget, reduction passes fold the smallest runs together first
    (the Merge operator's section-3.4 discipline).
    """

    def __init__(self, store: FlashStore, ram: SecureRam,
                 codec: SortKeyCodec, reserve_buffers: int = 2):
        self.store = store
        self.ram = ram
        self.codec = codec
        self.reserve_buffers = reserve_buffers
        #: runs spilled to flash during run formation (0 = in-RAM sort)
        self.spilled_runs = 0
        #: reduction passes the merge needed on top of the final merge
        self.reductions = 0

    # ------------------------------------------------------------------
    def sort(self, records: Iterable[Record]) -> Iterator[Record]:
        """Stream ``records`` in ascending order."""
        entry = self.codec.entry_bytes
        chunk_bytes = max(entry, self.ram.free_bytes
                          - self.reserve_buffers * self.ram.page_size)
        capacity = max(1, chunk_bytes // entry)
        it = iter(records)
        first = list(itertools.islice(it, capacity))
        if not first:
            return iter(())
        overflow = next(it, None)
        if overflow is None:
            return self._sort_in_ram(first)
        return self._spill_and_merge(first, itertools.chain([overflow], it),
                                     capacity)

    def _sort_in_ram(self, chunk: List[Record]) -> Iterator[Record]:
        """Single-chunk fast path: sort within one RAM reservation."""
        with self.ram.reserve(len(chunk) * self.codec.entry_bytes,
                              "sort chunk"):
            chunk.sort()
            yield from chunk

    def _spill_and_merge(self, first: List[Record],
                         rest: Iterator[Record],
                         capacity: int) -> Iterator[Record]:
        """Run formation (spill every chunk) followed by the merge."""
        files: List[FlashFile] = []
        try:
            builder = U32FileBuilder(self.store, self.ram,
                                     label="sort spill")
            files.append(builder.file)
            marks: List[Tuple[int, int]] = []
            batch = not scalar_exec()
            chunk = first
            while chunk:
                with self.ram.reserve(len(chunk) * self.codec.entry_bytes,
                                      "sort chunk"):
                    chunk.sort()
                    start = builder.mark()
                    if batch:
                        builder.append_words(
                            [word for record in chunk for word in record]
                        )
                    else:
                        for record in chunk:
                            for word in record:
                                builder.add(word)
                    marks.append((start, builder.mark() - start))
                chunk = list(itertools.islice(rest, capacity))
            builder.finish()
            runs = [U32View(builder.file, start, count)
                    for start, count in marks]
            self.spilled_runs = len(runs)
            runs = self._fit_to_budget(runs, files)
        except BaseException:
            for f in files:
                f.free()
            raise
        return self._merge(runs, files)

    # ------------------------------------------------------------------
    def _budget(self) -> int:
        """Open-run buffers available to the merge (advisory floor 1)."""
        return max(self.ram.free_buffers - self.reserve_buffers,
                   min(1, self.ram.free_buffers))

    def _fit_to_budget(self, runs: List[U32View],
                       files: List[FlashFile]) -> List[U32View]:
        """Reduction phase: fold runs until open buffers suffice."""
        while len(runs) > max(1, self._budget()):
            budget = self._budget()
            fold = min(len(runs), max(2, budget - 1))
            runs.sort(key=lambda v: v.count)
            victims, runs = runs[:fold], runs[fold:]
            builder = U32FileBuilder(self.store, self.ram,
                                     label="sort reduce")
            files.append(builder.file)
            iters = [self._records(v) for v in victims]
            try:
                if scalar_exec():
                    for record in heapq.merge(*iters):
                        for word in record:
                            builder.add(word)
                else:
                    pending: List[int] = []
                    for record in heapq.merge(*iters):
                        pending.extend(record)
                        if len(pending) >= 512:
                            builder.append_words(pending)
                            pending = []
                    builder.append_words(pending)
            finally:
                for i in iters:
                    i.close()
            runs.append(builder.finish())
            self.reductions += 1
        return runs

    def _records(self, view: U32View) -> Iterator[Record]:
        """Group a run's packed words back into records (one buffer).

        Batch mode regroups one decoded page per step (records may
        straddle page boundaries, so a word carry is kept); the page
        reads are :meth:`~repro.storage.runs.U32View.iterate`'s.
        """
        words = self.codec.words
        if scalar_exec():
            record: List[int] = []
            for word in view.iterate(self.ram, label="sort run"):
                record.append(word)
                if len(record) == words:
                    yield tuple(record)
                    record = []
            return
        pages = view.iter_pages(self.ram, label="sort run")
        try:
            carry: List[int] = []
            for page in pages:
                if carry:
                    page = carry + page
                whole = len(page) - len(page) % words
                for i in range(0, whole, words):
                    yield tuple(page[i:i + words])
                carry = page[whole:]
        finally:
            pages.close()

    def _merge(self, runs: List[U32View],
               files: List[FlashFile]) -> Iterator[Record]:
        """Final merge; frees the spill files when the stream closes."""
        iters = [self._records(v) for v in runs]
        try:
            yield from heapq.merge(*iters)
        finally:
            for i in iters:
                i.close()
            for f in files:
                f.free()


class TopKHeap:
    """Bounded selection of the ``k`` smallest records, RAM-resident.

    The heap's ``k * entry_bytes`` live in accounted secure RAM for the
    duration of the pass; records beyond the current worst are dropped
    on arrival, so the whole input streams through without any flash
    I/O.  The planner only picks this method when ``k`` fits the RAM
    envelope.
    """

    def __init__(self, ram: SecureRam, codec: SortKeyCodec, k: int):
        if k <= 0:
            raise PlanError("top-k needs a positive record budget")
        self.ram = ram
        self.codec = codec
        self.k = k

    def sort(self, records: Iterable[Record]) -> Iterator[Record]:
        """Stream the ``k`` smallest records in ascending order."""
        with self.ram.reserve(self.k * self.codec.entry_bytes,
                              "top-k heap"):
            # a max-heap of the best k via word-wise complement: the
            # heap root is the worst record currently kept
            heap: List[Record] = []
            for record in records:
                inverted = tuple(-w for w in record)
                if len(heap) < self.k:
                    heapq.heappush(heap, inverted)
                elif inverted > heap[0]:
                    heapq.heapreplace(heap, inverted)
            best = sorted(tuple(-w for w in inv) for inv in heap)
        return iter(best)


class IndexOrderScan:
    """Emit result-row positions in climbing-index value order.

    The ORDER BY column's climbing index stores, per value, a sorted
    sublist of anchor ids -- and the sublists themselves are laid out
    in value order.  Scanning them (reversed for DESC) and mapping each
    id through a ``{anchor id -> row position}`` table yields the
    result in sorted order without sorting anything; with a LIMIT the
    scan stops as soon as enough rows surfaced.  The id map is the only
    RAM the scan needs (8 accounted bytes per result row).
    """

    def __init__(self, ctx: ExecContext, order: OrderPlan):
        self.ctx = ctx
        self.order = order

    def positions(self, aids: Sequence[int]) -> Iterator[int]:
        """Row positions ordered by the indexed column's value."""
        ctx = self.ctx
        index = ctx.catalog.attr_index(self.order.index_table,
                                       self.order.index_column)
        if index.delta_entries:
            raise PlanError(
                "index-order scan over an index with delta entries"
            )
        desc = self.order.keys[0].desc
        with ctx.ram.reserve(max(1, len(aids)) * 8, "order-by id map"):
            pos_of = {aid: i for i, aid in enumerate(aids)}
            for view in index.scan_level(ctx.bound.anchor, ctx.ram,
                                         reverse=desc):
                for aid in view.iterate(ctx.ram, label="order-by run"):
                    pos = pos_of.get(aid)
                    if pos is not None:
                        yield pos


class OrderByExecutor:
    """Applies one plan's :class:`OrderPlan` to the projected rows."""

    def __init__(self, ctx: ExecContext, order: OrderPlan):
        self.ctx = ctx
        self.order = order

    # ------------------------------------------------------------------
    def execute(self, rows: List[Tuple]) -> List[Tuple]:
        """Order ``rows`` and apply OFFSET/LIMIT per the plan."""
        order = self.order
        with self.ctx.label(SORT_LABEL):
            if order.method is SortMethod.TRUNCATE:
                return self._slice_list(rows)
            if order.method is SortMethod.INDEX_ORDER:
                positions = IndexOrderScan(self.ctx, order).positions(
                    [row[order.aid_position] for row in rows]
                )
                return [rows[p] for p in self._slice_iter(positions)]
            codec = SortKeyCodec(order.keys)
            records = (
                codec.encode([row[p] for p in order.key_positions], i)
                for i, row in enumerate(rows)
            )
            if order.method is SortMethod.TOP_K:
                k = order.offset + order.limit
                ordered = TopKHeap(self.ctx.ram, codec, k).sort(records)
            else:
                sorter = ExternalSorter(self.ctx.store, self.ctx.ram,
                                        codec)
                ordered = sorter.sort(records)
            out = [rows[codec.position(r)]
                   for r in self._slice_iter(ordered)]
            if order.method is SortMethod.EXTERNAL:
                self.ctx.token.ledger.charge(
                    "sort", 0.0,
                    sort_spill_runs=sorter.spilled_runs,
                    sort_reductions=sorter.reductions,
                )
            return out

    # ------------------------------------------------------------------
    def _slice_list(self, rows: List[Tuple]) -> List[Tuple]:
        stop = (None if self.order.limit is None
                else self.order.offset + self.order.limit)
        return rows[self.order.offset:stop]

    def _slice_iter(self, it: Iterator) -> Iterator:
        stop = (None if self.order.limit is None
                else self.order.offset + self.order.limit)
        return itertools.islice(it, self.order.offset, stop)


def strip_internal_columns(bound: BoundQuery, names: List[str],
                           rows: List[Tuple]
                           ) -> Tuple[List[str], List[Tuple]]:
    """Drop the internally appended sort columns from a final result."""
    tail = bound.internal_tail
    if not tail:
        return names, rows
    keep = len(bound.projections) - tail
    return names[:keep], [row[:keep] for row in rows]
