"""Incremental DML: INSERT and DELETE against a built database.

The paper's flash-resident structures are designed for sequential,
append-only NAND writes, and every mutation here honors that:

* an INSERT appends the hidden half of the row to the table image,
  the foreign keys to ``SKT(table)``, and one entry per climbing
  index to its append-only delta log.  The visible half travels to
  Untrusted over the audited channel (Visible data is public storage
  by definition); hidden values arrive over the secure provisioning
  channel and *never* appear in outbound text -- the announced
  statement is the binder's redacted ``public_text``.
* a DELETE evaluates its predicates with the ordinary selection-join
  machinery (climbing indexes + Vis), then tombstones the matching
  ids.  Files are never compacted in place; an incremental
  ``db.compact(table)`` reclaims the space in bounded steps.

Cost discipline: an insert is O(appended bytes) -- a handful of tail
pages re-programmed plus the channel transfer of the row itself --
never a scan of the table.  DML costs are reported through the same
:class:`~repro.core.executor.QueryStats` as queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.catalog import SecureCatalog
from repro.core.executor import QepSjExecutor, QueryStats
from repro.core.operators import ExecContext
from repro.core.planner import Planner
from repro.errors import BindError, GhostDBError, StorageError
from repro.hardware.token import SecureToken
from repro.schema.model import Schema, Table
from repro.sql.binder import (BoundColumn, BoundDelete, BoundInsert,
                              BoundQuery)
from repro.storage.codec import RowCodec
from repro.untrusted.server import VisServer

DML_LABEL = "Dml"


@dataclass
class DmlResult:
    """Outcome and simulated cost of one INSERT or DELETE."""

    statement: str        # "insert" | "delete"
    table: str
    rows_affected: int
    stats: QueryStats


class DmlExecutor:
    """Applies bound DML statements to the token-resident database."""

    def __init__(self, schema: Schema, token: SecureToken,
                 catalog: SecureCatalog, vis_server: VisServer,
                 planner: Planner):
        self.schema = schema
        self.token = token
        self.catalog = catalog
        self.vis_server = vis_server
        self.planner = planner

    # ------------------------------------------------------------------
    # INSERT
    # ------------------------------------------------------------------
    def insert(self, bound: BoundInsert) -> int:
        """Append ``bound.rows``; returns the number of rows inserted."""
        table, hidden, hid_positions, vis_positions, fk_positions = \
            self.validate_insert(bound)

        with self.token.label(DML_LABEL):
            # the redacted statement is the only text that leaves
            self.token.channel.to_untrusted(
                max(1, len(bound.public_text)), kind="query",
                description=bound.public_text[:120],
            )
            # always push (possibly empty) visible tuples so Untrusted's
            # id space stays dense and in step with the token's
            self.vis_server.push_rows(
                bound.table,
                [tuple(r[p] for p in vis_positions) for r in bound.rows],
            )
            # hidden halves (incl. fks) enter over the secure
            # provisioning channel: inbound, unaudited, leak-free
            hidden_width = sum(c.type.width for c in table.hidden_columns)
            if hidden_width:
                self.token.channel.to_secure(
                    hidden_width * len(bound.rows),
                    f"provision({bound.table})",
                )
            for row in bound.rows:
                self._append_row(table, row, hidden, hid_positions,
                                 fk_positions)
        self.catalog.record_inserted_rows(bound.table, bound.rows)
        self.catalog.bump_generation(bound.table)
        return len(bound.rows)

    def validate_insert(self, bound: BoundInsert):
        """All side-effect-free INSERT checks, before anything mutates.

        Validates *before* any side effect: fk targets must exist and
        be live, hidden values must pack into the image codec.  Split
        out of :meth:`insert` so a multi-shard fleet can pre-validate
        every shard's slice of a statement before applying any of them
        (the all-or-nothing contract a single token gets for free).
        Returns the resolved column-position tuple :meth:`insert`
        continues with.
        """
        if bound.has_parameters:
            raise BindError(
                f"statement has {bound.param_count} unbound ? "
                f"placeholder(s); pass params to execute()"
            )
        table = self.schema.table(bound.table)
        hidden = [c for c in table.hidden_columns if not c.is_foreign_key]
        hid_positions = [table.column_position(c.name) for c in hidden]
        vis_positions = [table.column_position(c.name)
                         for c in table.visible_columns]
        fk_positions = [(c, table.column_position(c.name))
                        for c in table.foreign_keys]
        self._check_foreign_keys(bound, fk_positions)
        if hidden:
            codec = RowCodec([c.type for c in hidden])
            for row in bound.rows:
                codec.pack(tuple(row[p] for p in hid_positions))
        return table, hidden, hid_positions, vis_positions, fk_positions

    def _check_foreign_keys(self, bound: BoundInsert,
                            fk_positions) -> None:
        for col, pos in fk_positions:
            child = col.references
            limit = self.catalog.n_rows(child)
            for row in bound.rows:
                fk = row[pos]
                if not isinstance(fk, int) or not 0 <= fk < limit:
                    raise StorageError(
                        f"{bound.table}.{col.name}: fk {fk!r} out of "
                        f"range for {child} ({limit} rows)"
                    )
                if not self.catalog.is_live(child, fk):
                    raise GhostDBError(
                        f"{bound.table}.{col.name}: fk {fk} references "
                        f"a deleted {child} row"
                    )

    def _append_row(self, table: Table, row: Tuple, hidden,
                    hid_positions: List[int], fk_positions) -> int:
        catalog = self.catalog
        image = catalog.image(table.name)
        new_id = image.n_rows
        if image.heap is not None:
            image.heap.append_row(tuple(row[p] for p in hid_positions))
        image.n_rows += 1
        if table.name in catalog.skts:
            skt = catalog.skts[table.name]
            skt.append_row(self._descendant_ids(table, row, skt.columns))
        for col, pos in fk_positions:
            catalog.record_fk_delta(col.references, row[pos], new_id)
        for col in hidden:
            index = catalog.attr_indexes.get((table.name, col.name))
            if index is not None:
                index.append(row[table.column_position(col.name)], new_id)
        if table.name in catalog.id_indexes:
            catalog.id_indexes[table.name].append(new_id, new_id)
        catalog.raw_rows[table.name].append(tuple(row))
        return new_id

    def _descendant_ids(self, table: Table, row: Tuple,
                        skt_columns: List[str]) -> List[int]:
        """The new row's descendant ids, in ``SKT(table)`` column order.

        Direct children come straight from the row's foreign keys; a
        deeper descendant is found in the child's own SKT row -- one
        random read per child subtree, independent of table sizes.
        """
        ids: Dict[str, int] = {}
        for col in table.foreign_keys:
            child = col.references
            child_id = row[table.column_position(col.name)]
            ids[child] = child_id
            child_skt = self.catalog.skts.get(child)
            if child_skt is not None:
                child_row = child_skt.get(child_id)
                for name, value in zip(child_skt.columns, child_row):
                    ids[name] = value
        return [ids[name] for name in skt_columns]

    # ------------------------------------------------------------------
    # DELETE
    # ------------------------------------------------------------------
    def delete(self, bound: BoundDelete) -> int:
        """Tombstone every live row matching the predicates."""
        if bound.has_parameters:
            raise BindError(
                f"statement has {bound.param_count} unbound ? "
                f"placeholder(s); pass params to execute()"
            )
        ids = self.delete_candidates(bound)
        self.check_restrict(bound.table, ids)
        return self.apply_delete(bound, ids)

    # The three DELETE phases are public on their own so a sharded
    # fleet can interleave them across tokens: collect candidates on
    # every shard, RESTRICT-check them all, and only then tombstone
    # anywhere -- preserving the all-or-nothing behaviour a single
    # token's sequential path gets for free.
    def delete_candidates(self, bound: BoundDelete) -> List[int]:
        """Announce the statement and evaluate its predicates."""
        with self.token.label(DML_LABEL):
            # a DELETE's predicates are query text: public by the same
            # argument as SELECT predicates
            self.token.channel.to_untrusted(
                max(1, len(bound.sql)), kind="query",
                description=bound.sql[:120],
            )
        return self._matching_ids(bound)

    def check_restrict(self, table: str, ids: List[int]) -> None:
        """RESTRICT scan (charged), raising before anything mutates."""
        with self.token.label(DML_LABEL):
            self._check_restrict(table, ids)

    def apply_delete(self, bound: BoundDelete, ids: List[int]) -> int:
        """Tombstone ``ids`` and bump the table's generations."""
        with self.token.label(DML_LABEL):
            n = self.catalog.mark_deleted(bound.table, ids)
        self.catalog.record_deleted_rows(bound.table, ids)
        self.catalog.bump_generation(bound.table)
        return n

    def _matching_ids(self, bound: BoundDelete) -> List[int]:
        """Live ids satisfying the predicates, via the normal QEPSJ."""
        table = self.schema.table(bound.table)
        select = BoundQuery(
            sql=bound.sql, tables=(bound.table,), anchor=bound.table,
            selections=bound.selections,
            projections=(BoundColumn(bound.table, table.column("id")),),
        )
        plan = self.planner.plan(select)
        ctx = ExecContext(self.token, self.catalog, self.vis_server,
                          select)
        sj = QepSjExecutor(ctx).execute(plan)
        try:
            return list(sj.anchor_ids.iterate(self.token.ram,
                                              "delete ids"))
        finally:
            sj.free()

    def _check_restrict(self, table: str, ids: List[int]) -> None:
        """Referential integrity: no live parent may reference a dead
        child (GhostDB deletes RESTRICT rather than cascade).

        The check scans ``SKT(parent)`` -- the parent's foreign keys
        live there -- one page at a time, so it is a genuinely charged
        sequential pass over the parent's key table.
        """
        parent = self.schema.parent(table)
        if parent is None or not ids:
            return
        dead = set(ids)
        skt = self.catalog.skts[parent]
        pos = skt.column_positions([table])[0]
        for pid, row in enumerate(skt.heap.scan([pos])):
            if row[0] in dead and self.catalog.is_live(parent, pid):
                raise GhostDBError(
                    f"cannot delete {table} row {row[0]}: still "
                    f"referenced by live {parent} row {pid} "
                    f"(delete the referencing rows first)"
                )
