"""The Secure catalog: everything GhostDB persists on the token.

For each table the token stores the *hidden image* (hidden non-fk
attributes, row position == id), plus the fully indexed model of
section 3.2: one Subtree Key Table per non-leaf table, a climbing
index on each indexed hidden attribute, and a climbing index on each
non-root table's id (used to climb Visible selections).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import PlanError
from repro.hardware.token import SecureToken
from repro.index.climbing import ClimbingIndex
from repro.index.skt import SubtreeKeyTable
from repro.schema.model import Column, Schema, Table
from repro.storage.heap import HeapFile


@dataclass
class TableImage:
    """The hidden side of one table."""

    table: Table
    n_rows: int
    hidden_columns: List[Column]          # non-fk hidden attributes
    heap: Optional[HeapFile]              # None when no hidden attributes

    def hidden_positions(self, names: List[str]) -> List[int]:
        pos = {c.name: i for i, c in enumerate(self.hidden_columns)}
        return [pos[n] for n in names]


class SecureCatalog:
    """Lookup structure over the token-resident database."""

    def __init__(self, schema: Schema, token: SecureToken):
        self.schema = schema
        self.token = token
        self.images: Dict[str, TableImage] = {}
        self.skts: Dict[str, SubtreeKeyTable] = {}
        self.attr_indexes: Dict[Tuple[str, str], ClimbingIndex] = {}
        self.id_indexes: Dict[str, ClimbingIndex] = {}

    # ------------------------------------------------------------------
    def image(self, table: str) -> TableImage:
        try:
            return self.images[table]
        except KeyError:
            raise PlanError(f"no hidden image loaded for {table!r}") from None

    def n_rows(self, table: str) -> int:
        return self.image(table).n_rows

    def skt(self, table: str) -> SubtreeKeyTable:
        try:
            return self.skts[table]
        except KeyError:
            raise PlanError(f"table {table!r} has no SKT (leaf table?)") \
                from None

    def attr_index(self, table: str, column: str) -> ClimbingIndex:
        try:
            return self.attr_indexes[(table, column)]
        except KeyError:
            raise PlanError(
                f"no climbing index on {table}.{column}; hidden "
                f"selections require an index (fully indexed model)"
            ) from None

    def id_index(self, table: str) -> ClimbingIndex:
        try:
            return self.id_indexes[table]
        except KeyError:
            raise PlanError(f"no id climbing index for {table!r}") from None

    # ------------------------------------------------------------------
    def storage_report(self) -> Dict[str, int]:
        """Flash bytes per component family (for documentation/tests)."""
        report = {"hidden_images": 0, "skts": 0, "attr_indexes": 0,
                  "id_indexes": 0}
        for img in self.images.values():
            if img.heap is not None:
                report["hidden_images"] += img.heap.file.n_bytes
        for skt in self.skts.values():
            report["skts"] += skt.heap.file.n_bytes
        for ci in self.attr_indexes.values():
            report["attr_indexes"] += ci.storage_bytes()
        for ci in self.id_indexes.values():
            report["id_indexes"] += ci.storage_bytes()
        return report
