"""The Secure catalog: everything GhostDB persists on the token.

For each table the token stores the *hidden image* (hidden non-fk
attributes, row position == id), plus the fully indexed model of
section 3.2: one Subtree Key Table per non-leaf table, a climbing
index on each indexed hidden attribute, and a climbing index on each
non-root table's id (used to climb Visible selections).

Incremental DML adds three per-table pieces of append-only state:

* a *tombstone* set (flash-logged) of deleted ids, consulted by the
  executor and the reference oracle -- deletes never compact files;
* the *fk delta*: which new parent rows reference each child id since
  the build, letting climbing-index lookups reach appended rows
  without rebuilding ancestor runs;
* a *data generation* counter, bumped by every INSERT/DELETE, that
  session plan caches compare against so DML invalidates only plans
  touching the mutated table.

The catalog also owns the *statistics catalog* (:mod:`repro.core.stats`):
one :class:`~repro.core.stats.TableStats` sketch set per table,
gathered at build/rebuild time and incrementally maintained by the DML
paths, with a parallel per-table *stats generation* so plan caches
treat statistics changes exactly like data changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.stats import TableStats
from repro.errors import PlanError
from repro.hardware.token import SecureToken
from repro.index.climbing import Predicate
from repro.index.climbing import ClimbingIndex
from repro.index.skt import SubtreeKeyTable
from repro.flash.constants import ID_SIZE
from repro.flash.store import FlashFile
from repro.schema.model import Column, Schema, Table
from repro.storage.heap import HeapFile, append_fixed_record


@dataclass
class TableImage:
    """The hidden side of one table."""

    table: Table
    n_rows: int
    hidden_columns: List[Column]          # non-fk hidden attributes
    heap: Optional[HeapFile]              # None when no hidden attributes

    def hidden_positions(self, names: List[str]) -> List[int]:
        pos = {c.name: i for i, c in enumerate(self.hidden_columns)}
        return [pos[n] for n in names]


class SecureCatalog:
    """Lookup structure over the token-resident database."""

    def __init__(self, schema: Schema, token: SecureToken):
        self.schema = schema
        self.token = token
        self.images: Dict[str, TableImage] = {}
        self.skts: Dict[str, SubtreeKeyTable] = {}
        self.attr_indexes: Dict[Tuple[str, str], ClimbingIndex] = {}
        self.id_indexes: Dict[str, ClimbingIndex] = {}
        # raw loaded rows, kept for the reference oracle and rebuild();
        # DML appends here too so the oracle tracks the live database
        self.raw_rows: Dict[str, List[Tuple]] = {}
        # --- incremental-DML state (all append-only) ---
        self.tombstones: Dict[str, Set[int]] = {
            name: set() for name in schema.tables
        }
        self.fk_deltas: Dict[str, Dict[int, List[int]]] = {
            name: {} for name in schema.tables
        }
        self.data_generations: Dict[str, int] = {
            name: 0 for name in schema.tables
        }
        self._tombstone_logs: Dict[str, FlashFile] = {}
        # --- statistics catalog (planner metadata, token-resident) ---
        self.stats: Dict[str, TableStats] = {}
        self.stats_generations: Dict[str, int] = {
            name: 0 for name in schema.tables
        }
        # generations as of this catalog's (re)build; a rebuild compares
        # against them to find the tables mutated since
        self.built_generations: Dict[str, int] = dict(self.data_generations)

    # ------------------------------------------------------------------
    def image(self, table: str) -> TableImage:
        try:
            return self.images[table]
        except KeyError:
            raise PlanError(f"no hidden image loaded for {table!r}") from None

    def n_rows(self, table: str) -> int:
        return self.image(table).n_rows

    def skt(self, table: str) -> SubtreeKeyTable:
        try:
            return self.skts[table]
        except KeyError:
            raise PlanError(f"table {table!r} has no SKT (leaf table?)") \
                from None

    def attr_index(self, table: str, column: str) -> ClimbingIndex:
        try:
            return self.attr_indexes[(table, column)]
        except KeyError:
            raise PlanError(
                f"no climbing index on {table}.{column}; hidden "
                f"selections require an index (fully indexed model)"
            ) from None

    def id_index(self, table: str) -> ClimbingIndex:
        try:
            return self.id_indexes[table]
        except KeyError:
            raise PlanError(f"no id climbing index for {table!r}") from None

    # ------------------------------------------------------------------
    # incremental-DML state
    # ------------------------------------------------------------------
    def is_live(self, table: str, rid: int) -> bool:
        """Whether row ``rid`` has not been tombstoned."""
        return rid not in self.tombstones[table]

    def live_rows(self, table: str) -> int:
        """Row count net of tombstones."""
        return self.n_rows(table) - len(self.tombstones[table])

    def mark_deleted(self, table: str, ids: Iterable[int]) -> int:
        """Tombstone ``ids``; appends each to the flash tombstone log
        (tail-page appends, charged like any NAND write).

        Returns how many previously live rows died.  Files are never
        compacted in place -- an incremental
        :meth:`~repro.core.ghostdb.GhostDB.compact` of the table
        reclaims the space when tombstones accumulate.
        """
        dead = self.tombstones[table]
        log = self._tombstone_logs.get(table)
        if log is None:
            log = self.token.store.create(f"tombstones_{table}")
            self._tombstone_logs[table] = log
        n_before = len(dead)
        for rid in ids:
            if rid not in dead:
                append_fixed_record(log, rid.to_bytes(ID_SIZE, "little"),
                                    len(dead), self.token.page_size)
                dead.add(rid)
        return len(dead) - n_before

    def tombstone_log_bytes(self, table: str) -> int:
        """Flash bytes of ``table``'s tombstone log (compaction report)."""
        log = self._tombstone_logs.get(table)
        return log.n_bytes if log is not None else 0

    def drop_tombstone_log(self, table: str) -> None:
        """Free ``table``'s tombstone log after a compaction folded the
        deletions into the rebuilt image (the in-RAM set is cleared by
        the caller, in place -- the reference oracle shares it)."""
        log = self._tombstone_logs.pop(table, None)
        if log is not None:
            log.free()

    def record_fk_delta(self, child_table: str, child_id: int,
                        parent_id: int) -> None:
        """Note that new row ``parent_id`` references ``child_id``."""
        self.fk_deltas[child_table].setdefault(child_id, []).append(
            parent_id
        )

    def bump_generation(self, table: str) -> None:
        self.data_generations[table] += 1

    def generations_for(self, tables: Iterable[str]
                        ) -> Tuple[Tuple[str, Tuple[int, int]], ...]:
        """Snapshot of the (data, stats) generations a plan depends on."""
        return tuple(sorted(
            (t, (self.data_generations[t], self.stats_generations[t]))
            for t in tables
        ))

    # ------------------------------------------------------------------
    # statistics catalog
    # ------------------------------------------------------------------
    def stats_for(self, table: str) -> TableStats:
        try:
            return self.stats[table]
        except KeyError:
            raise PlanError(
                f"no statistics gathered for {table!r}"
            ) from None

    def selectivity(self, table: str, column: str,
                    predicate: Predicate) -> float:
        """Estimated selectivity of ``predicate`` over live rows."""
        stats = self.stats.get(table)
        if stats is None:
            return 0.5
        return stats.selectivity(column, predicate)

    def record_inserted_rows(self, table: str,
                             rows: Iterable[Tuple]) -> None:
        """Fold freshly appended rows into the table's sketches."""
        stats = self.stats.get(table)
        if stats is None:
            return
        for row in rows:
            stats.add_row(row)
        self.stats_generations[table] += 1

    def record_deleted_rows(self, table: str,
                            ids: Iterable[int]) -> None:
        """Fold tombstoned rows out of the table's sketches.

        The deleted values come from the retained raw rows; bounds stay
        conservative until the next rebuild/analyze re-tightens them.
        """
        stats = self.stats.get(table)
        if stats is None:
            return
        rows = self.raw_rows[table]
        changed = False
        for rid in ids:
            stats.remove_row(rows[rid])
            changed = True
        if changed:
            self.stats_generations[table] += 1

    def analyze(self) -> Dict[str, Dict]:
        """Recompute every table's sketches from the live rows.

        Unlike the incremental maintenance this re-tightens min/max
        bounds after deletes.  Bumps each recomputed table's stats
        generation so cached auto plans are re-costed.
        """
        out: Dict[str, Dict] = {}
        for name in self.schema.tables:
            dead = self.tombstones[name]
            live = [row for rid, row in enumerate(self.raw_rows[name])
                    if rid not in dead]
            self.stats[name] = TableStats.from_rows(
                self.schema.table(name), live
            )
            self.stats_generations[name] += 1
            out[name] = self.stats[name].describe()
        return out

    # ------------------------------------------------------------------
    def storage_report(self) -> Dict[str, int]:
        """Flash bytes per component family (for documentation/tests)."""
        report = {"hidden_images": 0, "skts": 0, "attr_indexes": 0,
                  "id_indexes": 0, "tombstones": 0}
        for log in self._tombstone_logs.values():
            report["tombstones"] += log.n_bytes
        for img in self.images.values():
            if img.heap is not None:
                report["hidden_images"] += img.heap.file.n_bytes
        for skt in self.skts.values():
            report["skts"] += skt.heap.file.n_bytes
        for ci in self.attr_indexes.values():
            report["attr_indexes"] += ci.storage_bytes()
        for ci in self.id_indexes.values():
            report["id_indexes"] += ci.storage_bytes()
        return report
