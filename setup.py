"""Setup shim: allows `python setup.py develop` / legacy editable installs
in offline environments that lack the `wheel` package."""
from setuptools import setup

setup()
