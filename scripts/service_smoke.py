#!/usr/bin/env python
"""CI smoke: boot the query service and slam it with 10 clients.

Builds a small synthetic database, starts the asyncio server
in-process, and runs the load generator with 10 concurrent pipelining
clients executing the Query-Q template mix.  Exits non-zero when any
query errored, when the server counted an error, or when the admission
bookkeeping finished unbalanced -- the cheap always-on proof that the
service layer boots and serves under concurrency.

Usage::

    PYTHONPATH=src python scripts/service_smoke.py [--clients 10]
        [--queries 10] [--scale 0.002] [--shards 1]
"""

from __future__ import annotations

import argparse
import sys

from repro.service.loadgen import run_loadgen
from repro.workloads.synthetic import SyntheticConfig, build_synthetic


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clients", type=int, default=10)
    parser.add_argument("--queries", type=int, default=10,
                        help="queries per client")
    parser.add_argument("--scale", type=float, default=0.002)
    parser.add_argument("--shards", type=int, default=1,
                        help="serve a hash-partitioned fleet of N tokens")
    opts = parser.parse_args()

    db = build_synthetic(SyntheticConfig(scale=opts.scale,
                                         full_indexing=True),
                         shards=opts.shards)
    report = run_loadgen(db, n_clients=opts.clients,
                         n_queries=opts.queries)
    print(report.describe())
    print(f"admission: {report.admission}")
    print(f"service  : {report.service}")

    failures = []
    if report.errors:
        failures.append(f"{report.errors} client-side errors")
    if report.service["errors_total"]:
        failures.append(
            f"{report.service['errors_total']} server-side errors")
    expected = opts.clients * opts.queries
    if report.n_queries != expected:
        failures.append(
            f"only {report.n_queries}/{expected} queries completed")
    if report.admission["reserved_now"] or report.admission["queue_depth"]:
        failures.append("admission ledger finished unbalanced")
    if report.admission["peak_reserved"] > report.admission["capacity"]:
        failures.append("admitted set over-pledged the RAM budget")
    if failures:
        print("SMOKE FAILED: " + "; ".join(failures))
        return 1
    print("service smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
