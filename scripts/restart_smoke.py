#!/usr/bin/env python
"""CI smoke: build -> snapshot -> restore -> identical fig10 answers.

Builds a synthetic database, snapshots it to a durable token image,
restores the image into a second database, and runs the Figure 10
query mix twice on both sides (the first restored pass faults pages in
lazily through the mmap backing, the second runs fully materialized).
Exits non-zero when any restored answer differs from the live twin's
(rows OR simulated costs, either pass) or when restoring was not
dramatically faster than building -- the always-on proof that a
"millisecond restart" really restarts the same database.

Usage::

    PYTHONPATH=src python scripts/restart_smoke.py [--scale 0.002]
        [--max-restore-fraction 0.10]
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time

from repro.core.ghostdb import GhostDB
from repro.workloads.queries import query_q
from repro.workloads.synthetic import SyntheticConfig, build_synthetic

SELECTIVITIES = (0.001, 0.01, 0.1)


def answer_mix(db):
    """(rows, simulated cost) of the fig10 mix, per selectivity."""
    out = {}
    for sv in SELECTIVITIES:
        result = db.execute(query_q(sv))
        out[sv] = (sorted(result.rows), result.stats.total_s)
    return out


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.002)
    parser.add_argument("--max-restore-fraction", type=float, default=0.10,
                        help="restore wall time must stay below this "
                             "fraction of the build wall time")
    opts = parser.parse_args()

    t0 = time.perf_counter()
    db = build_synthetic(SyntheticConfig(scale=opts.scale,
                                         full_indexing=True))
    build_s = time.perf_counter() - t0

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "smoke.img")
        t0 = time.perf_counter()
        summary = db.snapshot(path)
        snapshot_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        restored = GhostDB.restore(path, verify=True)
        restore_s = time.perf_counter() - t0

    print(f"build    : {build_s:.3f}s")
    print(f"snapshot : {snapshot_s:.3f}s "
          f"({summary['bytes']} bytes, {summary['pages']} pages)")
    print(f"restore  : {restore_s:.3f}s "
          f"({restore_s / build_s:.1%} of build, verify=True)")

    failures = []
    # two identical passes on each side: the first faults pages in
    # through the mmap backing on the restored side, the second runs
    # fully materialized -- both must match the live twin bit-for-bit
    live = (answer_mix(db), answer_mix(db))
    cold_then_warm = (answer_mix(restored), answer_mix(restored))
    for which, (a, b) in zip(("cold", "warm"),
                             zip(live, cold_then_warm)):
        for sv in SELECTIVITIES:
            if b[sv][0] != a[sv][0]:
                failures.append(
                    f"{which} rows differ after restore at sv={sv}")
            if b[sv][1] != a[sv][1]:
                failures.append(
                    f"{which} simulated cost differs after restore at "
                    f"sv={sv}: {b[sv][1]} != {a[sv][1]}")
    if restore_s > opts.max_restore_fraction * build_s:
        failures.append(
            f"restore took {restore_s:.3f}s, over "
            f"{opts.max_restore_fraction:.0%} of the {build_s:.3f}s build")

    if failures:
        print("RESTART SMOKE FAILED: " + "; ".join(failures))
        return 1
    print("restart smoke OK: restored database answers bit-identically")
    return 0


if __name__ == "__main__":
    sys.exit(main())
