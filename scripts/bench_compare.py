#!/usr/bin/env python
"""Compare a fresh perf-smoke bench file against the committed baseline.

Usage::

    python scripts/bench_compare.py <fresh.json> [--baseline FILE]
        [--threshold 0.15]

Loads the freshly produced ``ghostdb-perf-smoke/1`` report and diffs
its per-benchmark ``wall_s_mean`` against the latest committed
``BENCH_pr*.json`` (highest PR number; override with ``--baseline``).
Any benchmark whose wall time regressed by more than ``--threshold``
(default 15%) is flagged and the exit status is 1 -- wire it as a
non-blocking CI step (``continue-on-error``) so the warning lands in
the log without gating merges on noisy runners.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent


def latest_baseline(exclude: pathlib.Path | None = None) -> pathlib.Path:
    """The committed ``BENCH_pr<N>.json`` with the highest N."""
    best, best_n = None, -1
    for path in REPO.glob("BENCH_pr*.json"):
        if exclude is not None and path.resolve() == exclude.resolve():
            continue
        match = re.fullmatch(r"BENCH_pr(\d+)\.json", path.name)
        if match and int(match.group(1)) > best_n:
            best, best_n = path, int(match.group(1))
    if best is None:
        sys.exit("no committed BENCH_pr*.json baseline found")
    return best


def wall_means(report: dict) -> dict[str, float]:
    return {
        bench["name"]: bench["wall_s_mean"]
        for bench in report.get("benchmarks", [])
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", help="freshly generated bench JSON")
    parser.add_argument("--baseline", default=None,
                        help="baseline JSON (default: latest BENCH_pr*)")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="relative wall-time regression that warns")
    opts = parser.parse_args()

    fresh_path = pathlib.Path(opts.fresh)
    fresh_report = json.loads(fresh_path.read_text())
    fresh = wall_means(fresh_report)
    base_path = (pathlib.Path(opts.baseline) if opts.baseline
                 else latest_baseline(exclude=fresh_path))
    base_report = json.loads(base_path.read_text())
    base = wall_means(base_report)

    print(f"baseline: {base_path.name}")
    print(f"fresh   : {fresh_path.name}")
    header = f"{'benchmark':30s} {'base_s':>10s} {'fresh_s':>10s} {'ratio':>7s}"
    print(header)
    print("-" * len(header))
    regressions = []
    for name in sorted(set(base) | set(fresh)):
        if name not in base:
            print(f"{name:30s} {'-':>10s} {fresh[name]:10.3f}   (new)")
            continue
        if name not in fresh:
            print(f"{name:30s} {base[name]:10.3f} {'-':>10s}   (gone)")
            continue
        ratio = fresh[name] / base[name] if base[name] else float("inf")
        flag = ""
        if ratio > 1.0 + opts.threshold:
            flag = f"  REGRESSION (> +{opts.threshold:.0%})"
            regressions.append(name)
        print(f"{name:30s} {base[name]:10.3f} {fresh[name]:10.3f} "
              f"{ratio:6.2f}x{flag}")

    # service throughput goes the other way: *lower* q/s is the
    # regression (latency benchmarks above warn on higher wall time)
    fresh_qps = fresh_report.get("service_loadgen", {}).get("qps")
    base_qps = base_report.get("service_loadgen", {}).get("qps")
    if fresh_qps is not None and base_qps:
        ratio = fresh_qps / base_qps
        flag = ""
        if ratio < 1.0 - opts.threshold:
            flag = f"  REGRESSION (< -{opts.threshold:.0%})"
            regressions.append("service_loadgen.qps")
        print(f"{'service_loadgen q/s':30s} {base_qps:10.1f} "
              f"{fresh_qps:10.1f} {ratio:6.2f}x{flag}")

    # retry storm: the loadgen buckets transport-layer timeout and
    # retry *observations* into error_types even when every query
    # eventually succeeded; a fresh run that starts timing out or
    # retrying where the baseline had none is a service regression no
    # throughput ratio would catch
    fresh_errors = fresh_report.get("service_loadgen", {}) \
                               .get("error_types", {})
    base_errors = base_report.get("service_loadgen", {}) \
                             .get("error_types", {})
    for bucket in ("TimeoutObserved", "Retried", "ServiceTimeout"):
        fresh_n = fresh_errors.get(bucket, 0)
        base_n = base_errors.get(bucket, 0)
        if fresh_n <= base_n:
            continue
        flag = "  REGRESSION (retry storm)"
        regressions.append(f"service_loadgen.error_types[{bucket}]")
        print(f"{f'loadgen {bucket}':30s} {base_n:10d} "
              f"{fresh_n:10d}        {flag}")

    # cold start warns on slower restores (higher wall time is worse,
    # like the latency benchmarks; diffed separately because the point
    # lives in its own results block, not under "benchmarks")
    fresh_restore = fresh_report.get("cold_start", {}).get("restore_s")
    base_restore = base_report.get("cold_start", {}).get("restore_s")
    if fresh_restore is not None and base_restore:
        ratio = fresh_restore / base_restore
        flag = ""
        if ratio > 1.0 + opts.threshold:
            flag = f"  REGRESSION (> +{opts.threshold:.0%})"
            regressions.append("cold_start.restore_s")
        print(f"{'cold_start restore_s':30s} {base_restore:10.3f} "
              f"{fresh_restore:10.3f} {ratio:6.2f}x{flag}")

    # shard scaling: simulated q/s per fleet size; like the service
    # loadgen, *lower* throughput is the regression, diffed per point
    fresh_points = {
        p["shards"]: p["sim_qps"]
        for p in fresh_report.get("shard_scaling", {}).get("points", [])
    }
    base_points = {
        p["shards"]: p["sim_qps"]
        for p in base_report.get("shard_scaling", {}).get("points", [])
    }
    for shards in sorted(set(fresh_points) & set(base_points)):
        if not base_points[shards]:
            continue
        ratio = fresh_points[shards] / base_points[shards]
        flag = ""
        if ratio < 1.0 - opts.threshold:
            flag = f"  REGRESSION (< -{opts.threshold:.0%})"
            regressions.append(f"shard_scaling[{shards}].sim_qps")
        print(f"{f'shard_scaling q/s @{shards}':30s} "
              f"{base_points[shards]:10.1f} "
              f"{fresh_points[shards]:10.1f} {ratio:6.2f}x{flag}")

    if regressions:
        print(f"\nWARNING: {len(regressions)} benchmark(s) regressed "
              f"beyond {opts.threshold:.0%}: {', '.join(regressions)}")
        return 1
    print("\nno regressions beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
