#!/usr/bin/env python
"""Profile the perf-smoke benchmark drivers and print cProfile top-N.

Usage::

    PYTHONPATH=src python scripts/profile_hotpaths.py [-n 20]
        [--bench fig10] [--scalar] [--sort tottime|cumulative]

Runs each benchmark driver (fig10 pre-vs-post, fig14 throughput,
sort_topk, compaction churn) once under ``cProfile`` against freshly
built databases and reports wall-clock plus the top-N hottest
functions -- the evidence behind the vectorized-execution PR and the
tool for finding the next interpretation-tax hot spot.  ``--scalar``
profiles the scalar reference engine (``REPRO_SCALAR_EXEC=1``) for
before/after contrast.  The churn profile also prints the database's
``compaction_status()`` before and after the driver, so leftover debt
(or a stuck advisor verdict) is visible next to the hot functions.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import os
import pstats
import time


def profile_one(name: str, fn, args: tuple, top_n: int,
                sort: str) -> float:
    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    fn(*args)
    profiler.disable()
    wall = time.perf_counter() - start
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats(sort).print_stats(top_n)
    print(f"\n=== {name}: {wall:.3f}s wall ===")
    body = stream.getvalue().splitlines()
    # skip pstats' preamble, keep the header + top-N rows
    for line in body[4:4 + top_n + 3]:
        print(line)
    return wall


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-n", "--top", type=int, default=20,
                        help="functions to print per benchmark")
    parser.add_argument("--bench",
                        choices=("fig10", "fig14", "sort_topk", "churn"),
                        action="append",
                        help="benchmark(s) to profile (default: all)")
    parser.add_argument("--sort", default="tottime",
                        choices=("tottime", "cumulative"),
                        help="cProfile sort key")
    parser.add_argument("--scalar", action="store_true",
                        help="profile the scalar reference engine "
                             "(REPRO_SCALAR_EXEC=1)")
    opts = parser.parse_args()

    if opts.scalar:
        os.environ["REPRO_SCALAR_EXEC"] = "1"
        print("engine: scalar reference (REPRO_SCALAR_EXEC=1)")
    else:
        os.environ.pop("REPRO_SCALAR_EXEC", None)
        print("engine: vectorized (batch)")

    # imported after the env decision so nothing caches the mode
    from repro.bench.experiments import (
        build_bench_churn,
        build_bench_medical,
        build_bench_synthetic,
        compaction_churn,
        fig10_pre_vs_post,
        fig14_throughput,
        sort_topk,
    )

    def print_compaction_status(db, when: str) -> None:
        print(f"compaction status ({when}):")
        for status in db.compaction_status().values():
            print(f"  {status.describe()}")

    wanted = opts.bench or ["fig10", "fig14", "sort_topk", "churn"]
    walls = {}
    if "fig10" in wanted or "fig14" in wanted:
        t0 = time.perf_counter()
        syn = build_bench_synthetic()
        print(f"synthetic build: {time.perf_counter() - t0:.3f}s")
        if "fig10" in wanted:
            walls["fig10"] = profile_one(
                "fig10_pre_vs_post", fig10_pre_vs_post, (syn,),
                opts.top, opts.sort)
        if "fig14" in wanted:
            walls["fig14"] = profile_one(
                "fig14_throughput", fig14_throughput, (syn,),
                opts.top, opts.sort)
    if "sort_topk" in wanted:
        t0 = time.perf_counter()
        med = build_bench_medical()
        print(f"medical build: {time.perf_counter() - t0:.3f}s")
        walls["sort_topk"] = profile_one(
            "sort_topk", sort_topk, (med,), opts.top, opts.sort)
    if "churn" in wanted:
        t0 = time.perf_counter()
        churn_db = build_bench_churn()
        print(f"churn build: {time.perf_counter() - t0:.3f}s")
        print_compaction_status(churn_db, "before churn")
        walls["churn"] = profile_one(
            "compaction_churn", compaction_churn, (churn_db,),
            opts.top, opts.sort)
        print_compaction_status(churn_db, "after churn")

    print("\nwall-clock summary:")
    for name, wall in walls.items():
        print(f"  {name:10s} {wall:8.3f}s")


if __name__ == "__main__":
    main()
