#!/usr/bin/env python
"""Docs CI gate: intra-repo markdown links must resolve, examples must run.

Two checks, both simple on purpose:

* every relative link target in a tracked ``*.md`` file (README.md,
  docs/, CHANGES.md, ...) must exist on disk -- links to headings
  (``path#anchor``) are checked for the file part;
* with ``--run-examples``, every script under ``examples/`` is executed
  with ``PYTHONPATH=src`` and must exit 0.

Usage::

    PYTHONPATH=src python scripts/check_docs.py [--run-examples]

Exits non-zero listing every broken link / failing example.
"""

from __future__ import annotations

import os
import pathlib
import re
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

#: markdown inline links: [text](target); images share the syntax
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: targets that are not repo files
_EXTERNAL = ("http://", "https://", "mailto:", "#")


def iter_markdown_files() -> list:
    """All tracked markdown files (skip caches and virtualenvs)."""
    out = []
    for path in sorted(REPO.rglob("*.md")):
        parts = path.relative_to(REPO).parts
        if any(p.startswith(".") or p in ("__pycache__", "node_modules")
               for p in parts[:-1]):
            continue
        out.append(path)
    return out


def broken_links() -> list:
    """Every (file, target) whose relative link resolves nowhere."""
    broken = []
    for md in iter_markdown_files():
        text = md.read_text()
        # fenced code blocks routinely contain (parenthesised) pseudo
        # links; strip them before matching
        text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
        for match in _LINK.finditer(text):
            target = match.group(1)
            if target.startswith(_EXTERNAL):
                continue
            file_part = target.split("#", 1)[0]
            if not file_part:
                continue
            if not (md.parent / file_part).exists():
                broken.append((md.relative_to(REPO), target))
    return broken


def run_examples() -> list:
    """Run every examples/ script; returns the ones that failed."""
    failed = []
    env = dict(os.environ)
    src = str(REPO / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    for script in sorted((REPO / "examples").glob("*.py")):
        print(f"running {script.relative_to(REPO)} ...", flush=True)
        proc = subprocess.run(
            [sys.executable, str(script)], env=env, cwd=REPO,
            capture_output=True, text=True,
        )
        if proc.returncode != 0:
            failed.append((script.relative_to(REPO), proc.stderr[-2000:]))
    return failed


def main(argv: list) -> int:
    ok = True
    broken = broken_links()
    for md, target in broken:
        print(f"BROKEN LINK {md}: ({target})")
        ok = False
    if not broken:
        print(f"links ok across {len(iter_markdown_files())} markdown "
              f"file(s)")
    if "--run-examples" in argv:
        for script, stderr in run_examples():
            print(f"EXAMPLE FAILED {script}:\n{stderr}")
            ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
