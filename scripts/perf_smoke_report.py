#!/usr/bin/env python
"""Fold a pytest-benchmark JSON dump into the perf-trajectory point.

The CI perf-smoke job runs ``benchmarks/test_fig10_pre_vs_post.py``,
``benchmarks/test_fig14_throughput.py``, ``benchmarks/test_sort_topk.py``
and ``benchmarks/test_compaction_churn.py`` with
``--benchmark-json=bench_raw.json`` and then calls::

    python scripts/perf_smoke_report.py bench_raw.json --pr 5

which writes ``BENCH_pr5.json`` (an explicit output path may be passed
as a second positional argument instead).  The emitted file carries
wall-clock timings of the figure drivers plus the simulated-time
tables they captured under ``results/`` -- one comparable point per
PR, so regressions in either real or simulated time show up as a
broken trajectory (``scripts/bench_compare.py`` diffs two points).
"""

from __future__ import annotations

import argparse
import json
import pathlib

REPO = pathlib.Path(__file__).resolve().parent.parent
TABLES = ("fig10_pre_vs_post", "fig14_throughput", "sort_topk",
          "compaction_churn", "service_loadgen", "cold_start",
          "shard_scaling")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("raw", help="pytest-benchmark JSON dump")
    parser.add_argument("out", nargs="?", default=None,
                        help="output path (default: BENCH_pr<PR>.json)")
    parser.add_argument("--pr", type=int, required=True,
                        help="PR number this trajectory point belongs to")
    opts = parser.parse_args()
    out_path = pathlib.Path(opts.out or f"BENCH_pr{opts.pr}.json")

    raw = json.loads(pathlib.Path(opts.raw).read_text())
    benchmarks = [
        {
            "name": bench["name"],
            "wall_s_mean": bench["stats"]["mean"],
            "wall_s_stddev": bench["stats"]["stddev"],
            "rounds": bench["stats"]["rounds"],
        }
        for bench in raw.get("benchmarks", [])
    ]
    simulated = {}
    for name in TABLES:
        table = REPO / "results" / f"{name}.txt"
        if table.exists():
            simulated[name] = table.read_text().splitlines()
    machine = raw.get("machine_info", {})
    report = {
        "schema": "ghostdb-perf-smoke/1",
        "pr": opts.pr,
        "python": machine.get("python_version"),
        "machine": machine.get("cpu", {}).get("brand_raw"),
        "benchmarks": benchmarks,
        "simulated_tables": simulated,
    }
    # the service load generator additionally leaves a machine-readable
    # throughput point; fold it in so bench_compare can diff q/s
    loadgen = REPO / "results" / "service_loadgen.json"
    if loadgen.exists():
        report["service_loadgen"] = json.loads(loadgen.read_text())
    # ... as does the cold-start benchmark (restore vs rebuild walls)
    cold_start = REPO / "results" / "cold_start.json"
    if cold_start.exists():
        report["cold_start"] = json.loads(cold_start.read_text())
    # ... and the shard-scaling benchmark (simulated q/s per fleet size)
    shard_scaling = REPO / "results" / "shard_scaling.json"
    if shard_scaling.exists():
        report["shard_scaling"] = json.loads(shard_scaling.read_text())
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}: {len(benchmarks)} benchmark(s), "
          f"{len(simulated)} simulated table(s)")


if __name__ == "__main__":
    main()
