#!/usr/bin/env python
"""Fold a pytest-benchmark JSON dump into the perf-trajectory point.

The CI perf-smoke job runs ``benchmarks/test_fig10_pre_vs_post.py``,
``benchmarks/test_fig14_throughput.py`` and
``benchmarks/test_sort_topk.py`` with
``--benchmark-json=bench_raw.json`` and then calls::

    python scripts/perf_smoke_report.py bench_raw.json BENCH_pr4.json

The emitted file carries wall-clock timings of the figure drivers plus
the simulated-time tables they captured under ``results/`` -- one
comparable point per PR, so regressions in either real or simulated
time show up as a broken trajectory.
"""

from __future__ import annotations

import json
import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
PR = 4
TABLES = ("fig10_pre_vs_post", "fig14_throughput", "sort_topk")


def main(raw_path: str, out_path: str) -> None:
    raw = json.loads(pathlib.Path(raw_path).read_text())
    benchmarks = [
        {
            "name": bench["name"],
            "wall_s_mean": bench["stats"]["mean"],
            "wall_s_stddev": bench["stats"]["stddev"],
            "rounds": bench["stats"]["rounds"],
        }
        for bench in raw.get("benchmarks", [])
    ]
    simulated = {}
    for name in TABLES:
        table = REPO / "results" / f"{name}.txt"
        if table.exists():
            simulated[name] = table.read_text().splitlines()
    machine = raw.get("machine_info", {})
    report = {
        "schema": "ghostdb-perf-smoke/1",
        "pr": PR,
        "python": machine.get("python_version"),
        "machine": machine.get("cpu", {}).get("brand_raw"),
        "benchmarks": benchmarks,
        "simulated_tables": simulated,
    }
    pathlib.Path(out_path).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}: {len(benchmarks)} benchmark(s), "
          f"{len(simulated)} simulated table(s)")


if __name__ == "__main__":
    if len(sys.argv) != 3:
        sys.exit("usage: perf_smoke_report.py <bench_raw.json> <out.json>")
    main(sys.argv[1], sys.argv[2])
